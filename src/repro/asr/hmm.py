"""Decoding graph: the composition of lexicon and language model.

The paper describes the recogniser's search space as a hidden Markov model
built from an acoustic model, a pronunciation lexicon and a language model.
For decoding purposes the graph is fully described by:

* per-word phone sequences (from the lexicon),
* word-to-word transition scores (from the language model), and
* within-word topology (left-to-right phones with self-loops).

:class:`DecodingGraph` packages those pieces behind the queries the beam
search needs, including the LM-successor short-lists that implement the
"scope" pruning heuristic (local / global / network breadth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.asr.language_model import START_CONTEXT, BigramLanguageModel
from repro.asr.lexicon import Lexicon

__all__ = ["DecodingGraph"]


@dataclass(frozen=True)
class _WordArc:
    """A candidate word exit: the next word and its LM score."""

    word_id: int
    lm_log_prob: float


class DecodingGraph:
    """Search-space view combining the lexicon and the language model.

    Args:
        lexicon: Pronunciation lexicon.
        language_model: Fitted bigram language model over the same
            vocabulary.
        lm_weight: Scale factor applied to language-model log probabilities
            when combined with acoustic scores (the usual LM weight of HMM
            decoders).
        word_insertion_penalty: Additive penalty applied at each word exit;
            discourages the decoder from inserting many short words.

    Raises:
        ValueError: If the model and lexicon vocabulary sizes disagree or
            the language model is not fitted.
    """

    def __init__(
        self,
        lexicon: Lexicon,
        language_model: BigramLanguageModel,
        *,
        lm_weight: float = 1.0,
        word_insertion_penalty: float = 0.5,
    ) -> None:
        if not language_model.is_fitted:
            raise ValueError("language model must be fitted before graph construction")
        if language_model.n_words != lexicon.n_words:
            raise ValueError(
                "lexicon and language model cover different vocabularies: "
                f"{lexicon.n_words} vs {language_model.n_words} words"
            )
        if lm_weight < 0.0:
            raise ValueError("lm_weight must be non-negative")
        self.lexicon = lexicon
        self.language_model = language_model
        self.lm_weight = lm_weight
        self.word_insertion_penalty = word_insertion_penalty
        self._pronunciations: List[Tuple[int, ...]] = [
            lexicon.phones_of_word_id(w) for w in range(lexicon.n_words)
        ]
        self._first_phone_ids = np.array(
            [phones[0] for phones in self._pronunciations], dtype=int
        )
        self._successor_cache: dict[tuple[int, Optional[int]], Tuple[_WordArc, ...]] = {}
        self._entry_score_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # topology queries
    # ------------------------------------------------------------------
    @property
    def n_words(self) -> int:
        """Vocabulary size of the graph."""
        return self.lexicon.n_words

    def phones_of(self, word_id: int) -> Tuple[int, ...]:
        """Phone-id sequence of a word."""
        return self._pronunciations[word_id]

    def word_length(self, word_id: int) -> int:
        """Number of phones in a word."""
        return len(self._pronunciations[word_id])

    def is_final_position(self, word_id: int, position: int) -> bool:
        """Whether ``position`` is the last phone of ``word_id``."""
        return position == self.word_length(word_id) - 1

    # ------------------------------------------------------------------
    # language-model queries
    # ------------------------------------------------------------------
    def word_exit_score(self, context: int, word_id: int) -> float:
        """Weighted LM score (plus insertion penalty) of entering ``word_id``."""
        lm = self.language_model.log_prob(word_id, context)
        return self.lm_weight * lm - self.word_insertion_penalty

    def entry_score_vector(self, context: int) -> np.ndarray:
        """Vector of weighted LM entry scores for every word given ``context``.

        Cached per context; used by the decoder's word-exit expansion to
        combine language-model and acoustic look-ahead evidence in one
        vectorised step.
        """
        cached = self._entry_score_cache.get(context)
        if cached is None:
            log_probs = self.language_model.successor_log_probs(context)
            cached = self.lm_weight * log_probs - self.word_insertion_penalty
            self._entry_score_cache[context] = cached
        return cached

    @property
    def first_phone_ids(self) -> np.ndarray:
        """Phone id of the first phone of every word (word-id order)."""
        return self._first_phone_ids

    def successors(
        self, context: int = START_CONTEXT, *, breadth: Optional[int] = None
    ) -> Tuple[_WordArc, ...]:
        """Candidate next words from ``context``, best LM score first.

        Args:
            context: Previous word id or ``START_CONTEXT``.
            breadth: Maximum number of candidates; ``None`` means the entire
                vocabulary ("network" scope in the paper's terminology).
        """
        key = (context, breadth)
        cached = self._successor_cache.get(key)
        if cached is not None:
            return cached
        pairs = self.language_model.top_successors(context, k=breadth)
        arcs = tuple(
            _WordArc(word_id=w, lm_log_prob=lp) for w, lp in pairs
        )
        self._successor_cache[key] = arcs
        return arcs

    def sentence_lm_score(self, word_ids: List[int]) -> float:
        """Weighted LM score of a full hypothesis (without penalties)."""
        return self.lm_weight * self.language_model.sentence_log_prob(word_ids)

    # ------------------------------------------------------------------
    # reference scoring (for diagnostics)
    # ------------------------------------------------------------------
    def transcript_word_ids(self, words: List[str]) -> List[int]:
        """Map a word-string transcript to word ids."""
        return [self.lexicon.word_id(w) for w in words]

    def estimated_states(self) -> int:
        """Rough size of the static search space (word-position states)."""
        return int(sum(len(p) for p in self._pronunciations))
