"""Bigram language model with additive smoothing and back-off.

The decoding graph combines acoustic evidence with a word-level language
model (Section II-A).  A bigram model is sufficient to reproduce the
accuracy-latency trade-off: when the beam search prunes aggressively, the
language model is what pulls hypotheses back towards plausible word
sequences, and when it cannot (because the right hypothesis was pruned) the
word error rate rises.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["BigramLanguageModel"]

#: Sentinel word id used for the sentence-start context.
START_CONTEXT = -1


class BigramLanguageModel:
    """Additively smoothed bigram language model over integer word ids.

    Args:
        n_words: Vocabulary size.
        smoothing: Additive (Laplace) smoothing constant applied to both the
            unigram and bigram counts.

    The model is trained from whole sentences of word ids via :meth:`fit`
    and queried with log probabilities.  Probabilities are conditional on
    the previous word, with the sentence-start context handled explicitly.
    """

    def __init__(self, n_words: int, *, smoothing: float = 0.1) -> None:
        if n_words <= 0:
            raise ValueError("n_words must be positive")
        if smoothing <= 0.0:
            raise ValueError("smoothing must be positive")
        self.n_words = n_words
        self.smoothing = smoothing
        self._bigram_counts = np.zeros((n_words, n_words), dtype=float)
        self._start_counts = np.zeros(n_words, dtype=float)
        self._unigram_counts = np.zeros(n_words, dtype=float)
        self._fitted = False
        self._log_bigram: np.ndarray | None = None
        self._log_start: np.ndarray | None = None
        self._log_unigram: np.ndarray | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, sentences: Iterable[Sequence[int]]) -> "BigramLanguageModel":
        """Accumulate counts from sentences of word ids and finalise.

        Args:
            sentences: Iterable of word-id sequences.  Empty sentences are
                ignored.

        Returns:
            ``self`` (for chaining).
        """
        for sentence in sentences:
            ids = [int(w) for w in sentence]
            if not ids:
                continue
            self._validate_ids(ids)
            self._start_counts[ids[0]] += 1.0
            for word in ids:
                self._unigram_counts[word] += 1.0
            for prev, nxt in zip(ids, ids[1:]):
                self._bigram_counts[prev, nxt] += 1.0
        self._finalise()
        return self

    def _validate_ids(self, ids: Sequence[int]) -> None:
        arr = np.asarray(ids, dtype=int)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_words):
            raise ValueError("sentence contains out-of-vocabulary word ids")

    def _finalise(self) -> None:
        k = self.smoothing
        bigram = self._bigram_counts + k
        self._log_bigram = np.log(bigram / bigram.sum(axis=1, keepdims=True))
        start = self._start_counts + k
        self._log_start = np.log(start / start.sum())
        unigram = self._unigram_counts + k
        self._log_unigram = np.log(unigram / unigram.sum())
        self._fitted = True

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("language model has not been fitted")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def log_prob(self, word: int, context: int = START_CONTEXT) -> float:
        """Log probability of ``word`` following ``context``.

        Args:
            word: Word id being scored.
            context: Previous word id, or :data:`START_CONTEXT` for the
                beginning of the utterance.
        """
        self._require_fitted()
        if context == START_CONTEXT:
            return float(self._log_start[word])
        return float(self._log_bigram[context, word])

    def successor_log_probs(self, context: int = START_CONTEXT) -> np.ndarray:
        """Vector of log probabilities for every possible next word."""
        self._require_fitted()
        if context == START_CONTEXT:
            return self._log_start.copy()
        return self._log_bigram[context].copy()

    def top_successors(
        self, context: int = START_CONTEXT, *, k: int | None = None
    ) -> List[Tuple[int, float]]:
        """Return the ``k`` most probable next words, best first.

        Args:
            context: Previous word id or :data:`START_CONTEXT`.
            k: Number of successors; ``None`` returns all words.
        """
        log_probs = self.successor_log_probs(context)
        if k is None or k >= self.n_words:
            order = np.argsort(-log_probs)
        else:
            if k <= 0:
                raise ValueError("k must be positive")
            top = np.argpartition(-log_probs, k - 1)[:k]
            order = top[np.argsort(-log_probs[top])]
        return [(int(w), float(log_probs[w])) for w in order]

    def sentence_log_prob(self, sentence: Sequence[int]) -> float:
        """Joint log probability of a whole sentence of word ids."""
        self._require_fitted()
        ids = [int(w) for w in sentence]
        if not ids:
            return 0.0
        self._validate_ids(ids)
        total = self.log_prob(ids[0], START_CONTEXT)
        for prev, nxt in zip(ids, ids[1:]):
            total += self.log_prob(nxt, prev)
        return float(total)

    def perplexity(self, sentences: Iterable[Sequence[int]]) -> float:
        """Corpus perplexity under the model (lower is better)."""
        self._require_fitted()
        total_log_prob = 0.0
        total_words = 0
        for sentence in sentences:
            ids = list(sentence)
            if not ids:
                continue
            total_log_prob += self.sentence_log_prob(ids)
            total_words += len(ids)
        if total_words == 0:
            raise ValueError("cannot compute perplexity of an empty corpus")
        return float(np.exp(-total_log_prob / total_words))

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_word_sentences(
        cls,
        sentences: Iterable[Sequence[str]],
        word_to_id: Dict[str, int],
        *,
        smoothing: float = 0.1,
    ) -> "BigramLanguageModel":
        """Build and fit a model from sentences of word strings.

        Args:
            sentences: Iterable of word-string sequences.
            word_to_id: Vocabulary mapping (e.g. from the lexicon).
            smoothing: Additive smoothing constant.
        """
        model = cls(n_words=len(word_to_id), smoothing=smoothing)
        id_sentences = [
            [word_to_id[w] for w in sentence if w in word_to_id]
            for sentence in sentences
        ]
        return model.fit(id_sentences)
