"""FIG7 — the routing-rule generator itself (paper Fig. 7).

Benchmarks the generator's bootstrap loop on the IC service: how many trials
the 99.9 % confidence requirement demands per configuration, and which
configurations the generated rules select for representative tiers under
both objectives.
"""

import numpy as np
from conftest import save_artifact

from repro.analysis import format_table
from repro.core import RoutingRuleGenerator, enumerate_configurations


def test_fig7_rule_generator(benchmark, ic_cpu_measurements):
    configurations = enumerate_configurations(
        ic_cpu_measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet"],
    )

    def build():
        generator = RoutingRuleGenerator(
            ic_cpu_measurements,
            configurations,
            confidence=0.999,
            seed=7,
            min_trials=10,
            max_trials=60,
        )
        tables = {
            objective: generator.generate([0.01, 0.05, 0.10], objective)
            for objective in ("response-time", "cost")
        }
        return generator, tables

    generator, tables = benchmark(build)

    trials = [estimate.n_trials for estimate in generator.results]
    print()
    print(
        f"FIG7 bootstrapped {len(generator.results)} configurations: "
        f"trials mean={np.mean(trials):.1f}, min={min(trials)}, max={max(trials)}"
    )
    rows = []
    payload = {"trials": {"mean": float(np.mean(trials)), "max": int(max(trials))}}
    for objective, table in tables.items():
        for tolerance in (0.01, 0.05, 0.10):
            configuration = table.config_for(tolerance)
            estimate = table.estimate_for(tolerance)
            rows.append(
                [
                    objective,
                    f"{tolerance:.0%}",
                    configuration.name,
                    estimate.error_degradation if estimate else float("nan"),
                ]
            )
            payload.setdefault(objective, {})[str(tolerance)] = configuration.name
    print(
        format_table(
            ["objective", "tier", "selected configuration", "worst-case degradation"],
            rows,
            title="FIG7 generated routing rules",
            float_format=".4f",
        )
    )

    # every selected configuration honours its tier's worst-case bound
    for objective, table in tables.items():
        for tolerance, estimate in table.estimates.items():
            assert estimate.error_degradation <= tolerance + 1e-12
    assert min(trials) >= 10

    save_artifact("fig7_rule_generator", payload)
