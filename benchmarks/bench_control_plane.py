"""CTRL — closed-loop serving: static policy vs shed-only vs fully adaptive.

The SCEN benchmark showed the *tier mix* survives degraded infrastructure
better than OSFA; this benchmark asks what the *control plane* buys on top
of it.  Three sharpened degraded-mode scenarios (a flash crowd, a
half-dead accurate pool, a diurnal wave) each run under three controllers
over the same tiered deployment:

* **static** — the open loop: the offline-fit ``seq(fast, slow, 0.6)``
  policy serves everything, whatever happens (``control=None``; byte-for-
  byte the PR 3 engine).
* **shed-only** — SLO monitors plus a probabilistic admission
  controller: under a p95 breach, incoming requests are shed with
  probability 0.85 until the tail recovers.  Availability is spent to
  keep the latency SLO.
* **adaptive** — tier-downgrade admission plus the online policy
  adaptor: under breach, arrivals are force-degraded to the fast tier
  while the adaptor re-fits the PR 2 rule generator on the trailing
  telemetry window, hot-swapping onto cheaper configurations, and
  anchors back to the offline policy once the SLOs recover.

Pinned claims (the PR's acceptance bar):

* on the spike and node-crash scenarios the adaptive controller reaches
  **higher goodput (or equal goodput at lower node-seconds)** than the
  static system, with a better p95;
* the shed-only controller **keeps p95 inside its SLO** on those
  scenarios where the static system breaches it;
* closed-loop runs are **seed-deterministic** (same spec -> same digest);
* on the healthy diurnal wave the control plane does no harm.

Headline metrics land in ``BENCH_PERF.json`` (section ``control_plane``)
and ride the existing ``compare_perf.py`` ±5 % advisory gate — the
numbers are deterministic simulation outputs, so any drift is a
behaviour change, not timer noise.

Smoke mode (for the fast CI tier): set ``REPRO_BENCH_SMOKE=1``; the
deterministic workload is cheap enough to run unshrunk, so smoke mode
only routes the artefact to ``results/`` instead of the committed
baseline (exactly like ``bench_perf.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_control_plane.py -q -s
"""

import os
from dataclasses import replace

from bench_perf import _merge_output
from conftest import save_artifact

from repro.analysis import format_table
from repro.service.control import AdaptorConfig, AdmissionSpec, ControlSpec, SLOSpec
from repro.service.simulation import (
    NodeCrash,
    PoissonArrivals,
    SpikeArrivals,
    canonical_scenarios,
    run_scenario,
    scenario_measurements,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Per-scenario p95 SLO ceilings (seconds).  Chosen on the toy
#: measurement geometry so the static system breaches them on the spike
#: and the node crash, and meets them on the diurnal wave.
P95_TARGETS = {"spike": 1.5, "node-crash": 2.5, "diurnal": 1.5}


def _slos(target):
    return (
        SLOSpec(
            name="latency",
            max_p95_latency_s=target,
            breach_after=1,
            clear_after=8,
        ),
    )


def _shed_control(target):
    return ControlSpec(
        window_s=5.0,
        tick_interval_s=0.25,
        slos=_slos(target),
        admission=AdmissionSpec(policy="probabilistic", shed_probability=0.85),
    )


def _adaptive_control(target):
    return ControlSpec(
        window_s=8.0,
        tick_interval_s=0.25,
        slos=_slos(target),
        admission=AdmissionSpec(policy="degrade"),
        adaptor=AdaptorConfig(
            refit_interval_s=1.0,
            min_window_samples=15,
            degradation_mode="absolute",
            tolerance_step=0.06,
            max_tolerance=0.30,
            thresholds=(0.3, 0.4, 0.5, 0.6, 0.7),
        ),
    )


def _bench_scenarios():
    """The three closed-loop scenarios, sharpened past the SCEN sizes."""
    base = canonical_scenarios()
    spike = replace(
        base["spike"],
        arrivals=SpikeArrivals(
            2.0, spike_start_s=10.0, spike_duration_s=15.0, spike_multiplier=8.0
        ),
        n_requests=300,
    )
    crash = replace(
        base["node-crash"],
        arrivals=PoissonArrivals(6.0),
        n_requests=300,
        faults=(
            NodeCrash(at_s=6.0, version="slow", node_index=0, recover_at_s=30.0),
        ),
    )
    diurnal = replace(base["diurnal"], n_requests=300)
    return {"spike": spike, "node-crash": crash, "diurnal": diurnal}


def _row(name, controller, report):
    return [
        name,
        controller,
        report.p95_latency_s,
        report.goodput_rps,
        report.availability,
        report.n_shed,
        report.n_degraded,
        sum(report.total_node_seconds.values()),
    ]


def test_control_plane_sweep():
    measurements = scenario_measurements()
    scenarios = _bench_scenarios()
    rows = []
    artifact = {}
    reports = {}
    for name, spec in scenarios.items():
        target = P95_TARGETS[name]
        variants = {
            "static": spec,
            "shed": replace(spec, control=_shed_control(target)),
            "adaptive": replace(spec, control=_adaptive_control(target)),
        }
        for controller, variant in variants.items():
            report = run_scenario(variant, measurements, check_invariants=True)
            reports[(name, controller)] = report
            rows.append(_row(name, controller, report))
            artifact[f"{name}/{controller}"] = {
                "p95_latency_s": report.p95_latency_s,
                "goodput_rps": report.goodput_rps,
                "availability": report.availability,
                "n_shed": report.n_shed,
                "n_degraded": report.n_degraded,
                "node_seconds": sum(report.total_node_seconds.values()),
                "n_control_events": len(report.control_log),
                "digest": report.digest(),
            }

        # Determinism: the closed loop reproduces its own digest.
        again = run_scenario(
            variants["adaptive"], measurements, check_invariants=True
        )
        assert again.digest() == reports[(name, "adaptive")].digest(), name

    print()
    print(
        format_table(
            [
                "scenario",
                "controller",
                "p95 (s)",
                "goodput (r/s)",
                "availability",
                "shed",
                "degraded",
                "node-s",
            ],
            rows,
            title=(
                "CTRL closed-loop sweep: static vs shed-only vs adaptive "
                "over the tiered deployment"
            ),
            float_format=".3f",
        )
    )

    # The adaptive controller's claim: higher goodput, or equal goodput
    # at lower node-seconds — plus a better tail — on the overload and
    # fault scenarios.
    for name in ("spike", "node-crash"):
        static = reports[(name, "static")]
        adaptive = reports[(name, "adaptive")]
        ns_static = sum(static.total_node_seconds.values())
        ns_adaptive = sum(adaptive.total_node_seconds.values())
        assert adaptive.goodput_rps > static.goodput_rps or (
            adaptive.goodput_rps >= static.goodput_rps * 0.98
            and ns_adaptive < ns_static
        ), name
        assert adaptive.p95_latency_s < static.p95_latency_s, name

    # The shed-only controller's claim: where the static system breaches
    # its p95 SLO, shedding keeps the served tail inside it.
    for name in ("spike", "node-crash"):
        target = P95_TARGETS[name]
        assert reports[(name, "static")].p95_latency_s > target, name
        assert reports[(name, "shed")].p95_latency_s <= target, name

    # Do no harm: on the healthy diurnal wave the closed loop must not
    # cost goodput (the SLO never breaches, so the plane never acts).
    assert (
        reports[("diurnal", "adaptive")].goodput_rps
        >= reports[("diurnal", "static")].goodput_rps * 0.95
    )

    save_artifact("bench_control_plane", {"smoke": SMOKE, "results": artifact})
    _merge_output(
        {
            "control_plane": {
                "goodput_rps": {
                    f"{name}-{controller}": round(r.goodput_rps, 3)
                    for (name, controller), r in reports.items()
                },
                "p95_latency_s": {
                    f"{name}-{controller}": round(r.p95_latency_s, 4)
                    for (name, controller), r in reports.items()
                },
                "node_seconds": {
                    f"{name}-{controller}": round(
                        sum(r.total_node_seconds.values()), 3
                    )
                    for (name, controller), r in reports.items()
                },
                "smoke": SMOKE,
            }
        }
    )
