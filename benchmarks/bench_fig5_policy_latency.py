"""FIG5 — ensembling policies vs OSFA: response-time view (paper Fig. 5).

Compares the sequential, concurrent and early-termination ensembles (fast
version + most accurate version, mid confidence threshold) against the
"one size fits all" baseline on mean response time, escalation rate and
error degradation, for the ASR and IC services.
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
    build_pricing,
    evaluate_policy,
)

THRESHOLD = 0.55
FAST = {"asr": "asr_v4", "ic_cpu": "ic_cpu_squeezenet"}


def _policy_metrics(measurements, fast):
    accurate = measurements.most_accurate_version()
    policies = {
        "osfa": SingleVersionPolicy(accurate),
        "fast-only": SingleVersionPolicy(fast),
        "seq": SequentialPolicy(fast, accurate, THRESHOLD),
        "conc": ConcurrentPolicy(fast, accurate, THRESHOLD),
        "et": EarlyTerminationPolicy(fast, accurate, THRESHOLD),
    }
    # Shared pricing + OSFA baseline for all five evaluations.
    pricing = build_pricing(measurements)
    baseline = policies["osfa"].evaluate(measurements)
    return {
        name: evaluate_policy(
            measurements, policy, pricing=pricing, baseline_outcomes=baseline
        )
        for name, policy in policies.items()
    }


def test_fig5_policy_latency(benchmark, asr_measurements, ic_cpu_measurements):
    services = {"asr": asr_measurements, "ic_cpu": ic_cpu_measurements}
    result = benchmark(
        lambda: {
            name: _policy_metrics(ms, FAST[name]) for name, ms in services.items()
        }
    )

    payload = {}
    for name, metrics in result.items():
        rows = [
            [
                policy,
                m.mean_response_time_s,
                m.response_time_reduction,
                m.escalation_rate,
                m.error_degradation,
            ]
            for policy, m in metrics.items()
        ]
        print()
        print(
            format_table(
                ["policy", "mean response (s)", "time saved", "escalated", "degradation"],
                rows,
                title=f"FIG5 [{name}] ensembling policies vs OSFA (response time)",
                float_format=".3f",
            )
        )
        payload[name] = {
            policy: {
                "mean_response_time_s": m.mean_response_time_s,
                "response_time_reduction": m.response_time_reduction,
                "error_degradation": m.error_degradation,
            }
            for policy, m in metrics.items()
        }
        # every ensemble must be faster than OSFA and far less degraded than
        # serving the fast version alone
        for policy in ("seq", "conc", "et"):
            assert metrics[policy].response_time_reduction > 0.0
            assert metrics[policy].error_degradation < metrics["fast-only"].error_degradation
        # conc/et answer escalated requests faster than seq
        assert metrics["et"].mean_response_time_s <= metrics["seq"].mean_response_time_s + 1e-9

    save_artifact("fig5_policy_latency", payload)
