"""TAB1 — the Section III-E headline trade-off numbers.

Paper: "a 2.6x increase in response time can reduce the ASR service's error
by over 9 %, and a 5x response-time increase reduces the image
classification service's error by over 65 %".  The benchmark reports the
analogous latency-ratio / error-reduction pair for every service built in
this repository; absolute factors differ (our substrates are synthetic) but
the direction — meaningful error reductions cost multiples of latency —
must hold.
"""

from conftest import save_artifact

from repro.analysis import format_table, osfa_limit_summary

PAPER_VALUES = {
    "asr": {"latency_ratio": 2.6, "error_reduction": 0.09},
    "ic_cpu": {"latency_ratio": 5.0, "error_reduction": 0.65},
    "ic_gpu": {"latency_ratio": 5.0, "error_reduction": 0.65},
}


def test_tab1_osfa_limits(
    benchmark, asr_measurements, ic_cpu_measurements, ic_gpu_measurements
):
    services = {
        "asr": asr_measurements,
        "ic_cpu": ic_cpu_measurements,
        "ic_gpu": ic_gpu_measurements,
    }
    result = benchmark(
        lambda: {name: osfa_limit_summary(ms) for name, ms in services.items()}
    )

    rows = []
    payload = {}
    for name, summary in result.items():
        paper = PAPER_VALUES[name]
        rows.append(
            [
                name,
                summary.fastest_version,
                summary.most_accurate_version,
                summary.latency_ratio,
                summary.error_reduction,
                paper["latency_ratio"],
                paper["error_reduction"],
            ]
        )
        payload[name] = {
            "measured_latency_ratio": summary.latency_ratio,
            "measured_error_reduction": summary.error_reduction,
            "paper_latency_ratio": paper["latency_ratio"],
            "paper_error_reduction": paper["error_reduction"],
        }
        # qualitative claim: accuracy costs a latency multiple
        assert summary.latency_ratio > 1.5
        assert summary.error_reduction > 0.05

    print()
    print(
        format_table(
            [
                "service", "fastest", "most accurate",
                "latency ratio", "error reduction",
                "paper latency ratio", "paper error reduction",
            ],
            rows,
            title="TAB1 'one size fits all' headline trade-off",
            float_format=".2f",
        )
    )
    save_artifact("tab1_osfa_limits", payload)
