"""TAB2 — the paper's headline savings at the 1 % / 5 % / 10 % tiers.

Paper: Tolerance Tiers reduce service latency by 19 % / 45 % / 60 % and
invocation cost by 21 % / 60 % / 70 % at the 1 % / 5 % / 10 % tolerance
tiers (averaged over its services), with no accuracy-guarantee violations.
The benchmark reports the same table measured across the three reproduced
services and checks the qualitative shape: savings grow with tolerance and
are never obtained by violating the tier's bound.
"""

import numpy as np
from conftest import save_artifact

from repro.analysis import format_table
from repro.core import SingleVersionPolicy, build_pricing, evaluate_policy

PAPER = {
    "response-time": {0.01: 0.19, 0.05: 0.45, 0.10: 0.60},
    "cost": {0.01: 0.21, 0.05: 0.60, 0.10: 0.70},
}
TIERS = (0.01, 0.05, 0.10)


def _savings(measurements, generator, objective):
    table = generator.generate(list(TIERS), objective)
    # Shared pricing + OSFA baseline across the tier evaluations.
    pricing = build_pricing(measurements)
    baseline = SingleVersionPolicy(
        measurements.most_accurate_version()
    ).evaluate(measurements)
    out = {}
    for tolerance in TIERS:
        configuration = table.config_for(tolerance)
        metrics = evaluate_policy(
            measurements,
            configuration.policy,
            pricing=pricing,
            baseline_outcomes=baseline,
        )
        saving = (
            metrics.response_time_reduction
            if objective == "response-time"
            else metrics.cost_reduction
        )
        out[tolerance] = {
            "saving": saving,
            "degradation": metrics.error_degradation,
            "configuration": configuration.name,
        }
    return out


def test_tab2_headline(
    benchmark,
    asr_measurements,
    asr_generator,
    ic_cpu_measurements,
    ic_cpu_generator,
    ic_gpu_measurements,
    ic_gpu_generator,
):
    services = {
        "asr": (asr_measurements, asr_generator),
        "ic_cpu": (ic_cpu_measurements, ic_cpu_generator),
        "ic_gpu": (ic_gpu_measurements, ic_gpu_generator),
    }

    result = benchmark(
        lambda: {
            objective: {
                name: _savings(ms, gen, objective)
                for name, (ms, gen) in services.items()
            }
            for objective in ("response-time", "cost")
        }
    )

    rows = []
    payload = {}
    for objective, per_service in result.items():
        for tolerance in TIERS:
            savings = [per_service[name][tolerance]["saving"] for name in services]
            mean_saving = float(np.mean(savings))
            rows.append(
                [
                    objective,
                    f"{tolerance:.0%}",
                    *[f"{s:.2f}" for s in savings],
                    mean_saving,
                    PAPER[objective][tolerance],
                ]
            )
            payload.setdefault(objective, {})[str(tolerance)] = {
                "mean_saving": mean_saving,
                "paper": PAPER[objective][tolerance],
            }
        # savings grow with tolerance for every service
        for name in services:
            series = [per_service[name][t]["saving"] for t in TIERS]
            assert series[0] <= series[1] + 1e-9 <= series[2] + 2e-9
            for tolerance in TIERS:
                assert (
                    per_service[name][tolerance]["degradation"] <= tolerance + 1e-9
                )

    print()
    print(
        format_table(
            ["objective", "tier", "asr", "ic_cpu", "ic_gpu", "mean saving", "paper"],
            rows,
            title="TAB2 headline savings at the 1 % / 5 % / 10 % tiers",
            float_format=".2f",
        )
    )
    save_artifact("tab2_headline", payload)
