"""LOAD1 — tail latency vs offered load: OSFA against a tiered deployment.

The paper's replay benchmarks (Figs. 5/8) compare *mean per-request*
latency with no contention.  This benchmark puts the same deployments
under offered load with the discrete-event simulator: Poisson arrivals,
per-node FIFO queues, request batching, and an equal node budget for both
deployments.  OSFA spends its whole budget on the most accurate version;
the tiered deployment splits it between the 10 %-tier ensemble's fast and
accurate pools, sized by expected per-request node-seconds.

One load-only effect shapes the design space: the replay-optimal
``conc``/``et`` ensembles launch an accurate-pool job for *every* request,
so under a finite node budget the accurate pool sees OSFA's full offered
load on fewer nodes and tail latency collapses (early termination only
rescues jobs that have not started when the fast result lands).  The rule
generator here therefore searches the load-friendly ``single``/``seq``
space, where only escalated requests touch the accurate pool.  At every
sweep point we report p50/p95/p99 response time and mean billed cost; the
headline check is that the tiered deployment's p95 drops to or below
OSFA's at one or more offered rates — in practice it wins as the system
approaches saturation, exactly the "heavy traffic" regime the paper's
motivation describes.

Smoke mode (for CI): set ``REPRO_BENCH_SMOKE=1`` to shrink request counts
and the sweep grid.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_load_latency.py -q -s
"""

import os

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import RoutingRuleGenerator, enumerate_configurations
from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import SingleVersionPolicy
from repro.service.gateway import SimulatedBackend, TierGateway
from repro.service.simulation import (
    BatchingConfig,
    PoissonArrivals,
    build_replay_cluster,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Total node budget each deployment may spend.
NODE_BUDGET = 4
#: The tier whose ensemble the tiered deployment serves.
TIER = 0.10
N_REQUESTS = 300 if SMOKE else 1500
#: Offered load as a fraction of the OSFA deployment's service capacity.
LOAD_FRACTIONS = (0.6, 0.95) if SMOKE else (0.3, 0.6, 0.8, 0.95)
BATCHING = BatchingConfig(max_batch_size=4, max_wait_s=0.01)


def _load_friendly_generator(measurements):
    """Rule generator over the single/seq design space (see module doc)."""
    configurations = enumerate_configurations(
        measurements,
        thresholds=(0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.8),
        policy_kinds=("single", "seq"),
        fast_versions=[
            "ic_cpu_squeezenet",
            "ic_cpu_googlenet",
            "ic_cpu_alexnet",
        ],
    )
    return RoutingRuleGenerator(
        measurements,
        configurations,
        confidence=0.999,
        seed=2,
        min_trials=10,
        max_trials=60,
    )


def _tier_versions(measurements, configuration):
    """Split the node budget by each version's expected work per request.

    Capacity planning, not an even split: the fast version serves every
    request, while the accurate version's expected node-seconds depend on
    the policy kind — every request under ``conc``, only escalated ones
    under ``seq``/``et`` (cancellation strips the rest).  Pools get nodes
    proportional to those expected per-request node-seconds, each at least
    one node.
    """
    policy = configuration.policy
    if configuration.kind == "single":
        return {policy.versions[0]: NODE_BUDGET}
    fast, accurate = policy.fast_version, policy.accurate_version
    confidences = measurements.column(fast, "confidence")
    escalation = float((confidences < policy.confidence_threshold).mean())
    fast_work = measurements.mean_latency(fast)
    accurate_share = 1.0 if configuration.kind == "conc" else escalation
    accurate_work = accurate_share * measurements.mean_latency(accurate)
    fast_nodes = round(NODE_BUDGET * fast_work / (fast_work + accurate_work))
    fast_nodes = min(max(fast_nodes, 1), NODE_BUDGET - 1)
    return {fast: fast_nodes, accurate: NODE_BUDGET - fast_nodes}


def _run(measurements, *, rate, configuration=None, router=None, pools, seed):
    # The load test drives the *public API*: a TierGateway over the
    # simulated backend, whose run_load() is bit-identical to driving the
    # engine directly.
    cluster = build_replay_cluster(measurements, pools)
    gateway = TierGateway(
        SimulatedBackend(cluster, batching=BATCHING, seed=seed),
        configuration=configuration,
        router=router,
    )
    return gateway.run_load(
        PoissonArrivals(rate),
        N_REQUESTS,
        tolerance=TIER,
        payload_ids=measurements.request_ids,
    )


def test_load_latency_sweep(ic_cpu_measurements):
    measurements = ic_cpu_measurements
    accurate = measurements.most_accurate_version()
    osfa_config = EnsembleConfiguration(
        "osfa", SingleVersionPolicy(accurate)
    )
    table = _load_friendly_generator(measurements).generate(
        [TIER], "response-time"
    )
    tier_config = table.config_for(TIER)

    # Offered rates are anchored to OSFA's aggregate service capacity, so
    # "0.95" means OSFA is near saturation while both deployments see the
    # exact same arrival process.
    capacity = NODE_BUDGET / measurements.mean_latency(accurate)
    rows, payload = [], []
    tiered_wins = 0
    for fraction in LOAD_FRACTIONS:
        rate = fraction * capacity
        osfa = _run(
            measurements,
            rate=rate,
            configuration=osfa_config,
            pools={accurate: NODE_BUDGET},
            seed=101,
        )
        tiered = _run(
            measurements,
            rate=rate,
            configuration=tier_config,
            pools=_tier_versions(measurements, tier_config),
            seed=101,
        )
        payload.append(
            {
                "load_fraction": fraction,
                "offered_rate_rps": rate,
                "osfa": osfa.summary(),
                "tiered": tiered.summary(),
            }
        )
        for name, report in (("osfa", osfa), ("tiered", tiered)):
            rows.append(
                [
                    f"{fraction:.0%}",
                    name,
                    report.p50_latency_s,
                    report.p95_latency_s,
                    report.p99_latency_s,
                    report.mean_queue_wait_s,
                    1000.0 * report.mean_invocation_cost,
                ]
            )
        if tiered.p95_latency_s <= osfa.p95_latency_s:
            tiered_wins += 1
        # sanity: both deployments completed every request
        assert osfa.n_requests == N_REQUESTS
        assert tiered.n_requests == N_REQUESTS

    # Acceptance: the tiered deployment matches or beats OSFA's p95 at
    # equal offered load for at least one sweep point.
    assert tiered_wins >= 1

    print()
    print(
        format_table(
            ["load", "deployment", "p50 (s)", "p95 (s)", "p99 (s)", "queue wait (s)", "$/1k req"],
            rows,
            title=(
                f"LOAD1 tail latency vs offered load "
                f"(tier={TIER:.0%}, {NODE_BUDGET} nodes each, "
                f"tiered config: {tier_config.name})"
            ),
            float_format=".4f",
        )
    )
    save_artifact("load_latency_sweep", {"sweep": payload})
