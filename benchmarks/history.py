"""Append-only longitudinal history of benchmark runs.

``BENCH_PERF.json`` is a single point: the last full run on a quiet
machine.  ``results/bench_history.jsonl`` is the trajectory: every
``bench_perf`` / ``bench_resilience`` / ``bench_control_plane`` run — and
any live gateway session exporting through the control plane's
:class:`~repro.service.control.MetricsExporter` — appends one JSON line
with its flattened metrics plus the metadata needed to interpret them
later (commit, branch, machine fingerprint, simulator engine, smoke
tag).  The file is append-only by design: entries are facts about runs
that happened, never rewritten, so trend analysis can condition on the
noise that was actually observed instead of a fixed tolerance band.

Downstream consumers:

* :func:`detect_changepoints` — per-metric step detection over the
  history via :func:`repro.stats.changepoint.detect_step` (the
  ``ConfidenceTest``-conditioned scan, not a ±5 % band);
* ``compare_perf.py --against-history`` — scores a fresh artefact
  against the history's noise (smoke runs only against smoke-tagged
  entries, full runs only against full entries);
* ``compare_perf.py --branch-vs-main`` — compares the current branch's
  entries against main's on the same machinery.

Schema (one JSON object per line)::

    {
      "schema": 1,
      "timestamp": 1754650000.0,        # unix seconds
      "source": "bench_perf",           # producing harness (or "gateway")
      "commit": "de7073d...",           # git HEAD, "unknown" outside git
      "branch": "main",
      "machine": {"hostname": ..., "platform": ..., "python": ...,
                  "cpu_count": ...},
      "engine": "columnar",             # simulator engine in effect
      "smoke": false,                   # single-rep CI run vs full run
      "metrics": {"serving_simulator.requests_per_s": 268000.0, ...}
    }

Loading is tolerant: malformed or truncated lines (a crashed run, a
merge artefact) are skipped with a warning rather than poisoning the
whole trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.stats.changepoint import Changepoint, detect_step
from repro.stats.confidence import ConfidenceTest

__all__ = [
    "HISTORY_PATH",
    "SCHEMA_VERSION",
    "HistoryEntry",
    "append_entry",
    "detect_changepoints",
    "entry_from_metrics",
    "flatten_metrics",
    "git_metadata",
    "load_history",
    "machine_fingerprint",
    "machine_mismatch_warnings",
    "metric_labels",
    "metric_series",
    "record_run",
]

SCHEMA_VERSION = 1

#: The trajectory of record, next to the other committed artefacts.
HISTORY_PATH = Path(__file__).resolve().parent.parent / "results" / "bench_history.jsonl"

#: Keys that carry run *metadata* inside benchmark payload sections and
#: must not be flattened into metric values.
_NON_METRIC_KEYS = frozenset({"smoke"})


@dataclass(frozen=True)
class HistoryEntry:
    """One benchmark (or gateway-export) run in the longitudinal history.

    Attributes:
        timestamp: Unix seconds the entry was recorded.
        source: Producing harness (``bench_perf``, ``bench_resilience``,
            ``bench_control_plane``, ``gateway``, ...).
        commit: Git HEAD at record time (``"unknown"`` outside a repo).
        branch: Git branch at record time (``"unknown"`` outside a repo).
        machine: Machine fingerprint (hostname / platform / python /
            cpu count) — trend checks warn when a series mixes machines.
        engine: Simulator engine in effect (``REPRO_SIM_ENGINE`` or the
            columnar default).
        smoke: Whether the run was a single-repetition smoke run.
        metrics: Flattened ``section.metric[.key]`` -> float values.
        schema: History schema version.
    """

    timestamp: float
    source: str
    commit: str
    branch: str
    machine: Dict[str, object]
    engine: str
    smoke: bool
    metrics: Dict[str, float]
    schema: int = SCHEMA_VERSION


def machine_fingerprint() -> Dict[str, object]:
    """The recording machine's identity, as stored in every entry."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def git_metadata(cwd: Optional[Path] = None) -> Dict[str, str]:
    """Current ``{"commit": ..., "branch": ...}``, tolerant of no-git.

    Args:
        cwd: Repository directory (defaults to this file's repo).
    """
    root = Path(cwd) if cwd is not None else HISTORY_PATH.parent.parent
    meta = {"commit": "unknown", "branch": "unknown"}
    for key, args in (
        ("commit", ("rev-parse", "HEAD")),
        ("branch", ("rev-parse", "--abbrev-ref", "HEAD")),
    ):
        try:
            out = subprocess.run(
                ("git", *args),
                cwd=root,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if out.returncode == 0 and out.stdout.strip():
            meta[key] = out.stdout.strip()
    return meta


def flatten_metrics(payload: dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a ``BENCH_PERF.json``-shaped payload into metric rows.

    Nested dicts become dotted labels (``section.metric.key``); numeric
    leaves are kept (bools and the ``smoke`` metadata tag are not);
    strings and other non-numeric leaves (e.g. ``rule_tables`` config
    ids, digests) are dropped.

    Args:
        payload: A section payload or a whole artefact.
        prefix: Label prefix for recursion.
    """
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        if key in _NON_METRIC_KEYS:
            continue
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{label}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[label] = float(value)
    return flat


def entry_from_metrics(
    metrics: Dict[str, float],
    *,
    source: str,
    smoke: bool,
    engine: Optional[str] = None,
    timestamp: Optional[float] = None,
    machine: Optional[Dict[str, object]] = None,
    git: Optional[Dict[str, str]] = None,
) -> HistoryEntry:
    """Build a :class:`HistoryEntry` around already-flat metrics.

    This is the seam the gateway export uses: the control plane's
    ``MetricsExporter.history_record`` produces the flat metrics dict
    and this function stamps the run metadata, so live sessions and
    benchmark runs share one schema.

    Args:
        metrics: Flattened ``label -> value`` metrics.
        source: Producing harness name.
        smoke: Smoke-run tag.
        engine: Simulator engine (defaults to ``REPRO_SIM_ENGINE`` or
            ``"columnar"``).
        timestamp: Record time (defaults to now).
        machine: Machine fingerprint override (defaults to this
            machine's).
        git: ``{"commit", "branch"}`` override (defaults to querying
            git).
    """
    git_meta = git if git is not None else git_metadata()
    return HistoryEntry(
        timestamp=float(time.time() if timestamp is None else timestamp),
        source=source,
        commit=git_meta.get("commit", "unknown"),
        branch=git_meta.get("branch", "unknown"),
        machine=machine if machine is not None else machine_fingerprint(),
        engine=engine
        if engine is not None
        else os.environ.get("REPRO_SIM_ENGINE", "columnar"),
        smoke=bool(smoke),
        metrics=dict(metrics),
    )


def append_entry(entry: HistoryEntry, path: Path = HISTORY_PATH) -> Path:
    """Append one entry to the JSONL history (creating it if needed)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(asdict(entry), sort_keys=True) + "\n")
    return path


def record_run(
    payload: dict,
    *,
    source: str,
    smoke: bool,
    path: Path = HISTORY_PATH,
    **metadata,
) -> HistoryEntry:
    """Flatten one benchmark payload and append it to the history.

    Args:
        payload: The section payload (e.g. what ``_merge_output`` just
            merged) or a whole artefact.
        source: Producing harness name.
        smoke: Smoke-run tag.
        path: History file (the default is the committed trajectory).
        **metadata: Passed through to :func:`entry_from_metrics`.
    """
    entry = entry_from_metrics(
        flatten_metrics(payload), source=source, smoke=smoke, **metadata
    )
    append_entry(entry, path)
    return entry


def load_history(
    path: Path = HISTORY_PATH,
    *,
    smoke: Optional[bool] = None,
    source: Optional[str] = None,
    branch: Optional[str] = None,
) -> List[HistoryEntry]:
    """Read the history, oldest first, with optional filters.

    Missing files and empty files load as an empty history; malformed
    lines are skipped with a warning on stderr (append-only files
    survive crashes mid-line).

    Args:
        path: History file.
        smoke: Keep only entries with this smoke tag (``None`` keeps
            all) — the fix for smoke runs being judged against
            full-repetition baselines.
        source: Keep only entries from this harness.
        branch: Keep only entries recorded on this branch.
    """
    if not path.exists():
        return []
    entries: List[HistoryEntry] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            raw = json.loads(line)
            entry = HistoryEntry(
                timestamp=float(raw["timestamp"]),
                source=str(raw["source"]),
                commit=str(raw.get("commit", "unknown")),
                branch=str(raw.get("branch", "unknown")),
                machine=dict(raw.get("machine", {})),
                engine=str(raw.get("engine", "unknown")),
                smoke=bool(raw.get("smoke", False)),
                metrics={
                    str(k): float(v) for k, v in dict(raw["metrics"]).items()
                },
                schema=int(raw.get("schema", SCHEMA_VERSION)),
            )
        except (ValueError, TypeError, KeyError) as exc:
            print(
                f"history: skipping malformed line {lineno} of {path}: {exc}",
                file=sys.stderr,
            )
            continue
        if smoke is not None and entry.smoke != smoke:
            continue
        if source is not None and entry.source != source:
            continue
        if branch is not None and entry.branch != branch:
            continue
        entries.append(entry)
    entries.sort(key=lambda e: e.timestamp)
    return entries


def metric_series(
    entries: Sequence[HistoryEntry], label: str
) -> List[float]:
    """One metric's values across the history, oldest first.

    Entries that never recorded the metric (older schema, different
    harness) are simply absent from the series — a schema addition must
    not read as a changepoint.
    """
    return [e.metrics[label] for e in entries if label in e.metrics]


def metric_labels(entries: Sequence[HistoryEntry]) -> List[str]:
    """Every metric label appearing anywhere in the history, sorted."""
    labels = set()
    for entry in entries:
        labels.update(entry.metrics)
    return sorted(labels)


def machine_mismatch_warnings(
    entries: Sequence[HistoryEntry],
    *,
    current: Optional[Dict[str, object]] = None,
) -> List[str]:
    """Human-readable warnings when a history mixes machines.

    Cross-machine timings are not one noise regime: a trend over them
    conflates hardware with regressions.  The check is advisory — the
    deterministic simulation metrics survive machine changes — but the
    warning must be visible.

    Args:
        entries: The (already filtered) history under analysis.
        current: Fingerprint of the machine running the analysis; when
            given, a mismatch against the history is reported too.
    """
    warnings: List[str] = []
    seen: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        key = json.dumps(entry.machine, sort_keys=True)
        seen.setdefault(key, entry.machine)
    if len(seen) > 1:
        names = sorted(
            str(machine.get("hostname", "unknown")) for machine in seen.values()
        )
        warnings.append(
            f"history mixes {len(seen)} machine fingerprints "
            f"({', '.join(names)}): timing trends conflate hardware with "
            "regressions; trust only the deterministic simulation metrics"
        )
    if current is not None and seen:
        current_key = json.dumps(dict(current), sort_keys=True)
        if current_key not in seen:
            warnings.append(
                "current machine "
                f"({current.get('hostname', 'unknown')}) has no entries in "
                "this history: fresh-run deltas include a hardware change"
            )
    return warnings


def detect_changepoints(
    entries: Sequence[HistoryEntry],
    *,
    labels: Optional[Iterable[str]] = None,
    test: Optional[ConfidenceTest] = None,
    min_segment: int = 5,
) -> Dict[str, Changepoint]:
    """Scan every metric series in a history for step changes.

    Args:
        entries: The (already filtered) history, oldest first.
        labels: Metric labels to scan (default: every label present).
        test: Confidence test supplying the significance level
            (default: the generator's 99.9 % setting).
        min_segment: Minimum runs on each side of a candidate step.

    Returns:
        ``label -> Changepoint`` for every metric whose series contains
        a significant step.  Metrics with too little history simply
        cannot flag (the detector returns ``None`` below
        ``2 * min_segment`` observations).
    """
    if test is None:
        test = ConfidenceTest()
    found: Dict[str, Changepoint] = {}
    for label in labels if labels is not None else metric_labels(entries):
        series = metric_series(entries, label)
        changepoint = detect_step(series, test=test, min_segment=min_segment)
        if changepoint is not None:
            found[label] = changepoint
    return found
