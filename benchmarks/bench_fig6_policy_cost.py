"""FIG6 — ensembling policies vs OSFA: cost view (paper Fig. 6).

Breaks each policy's cost down into the node time spent on the fast versus
the accurate version, reproducing the paper's discussion that concurrent
execution wastes money on the accurate version even when its result is
discarded, and that early termination bounds that waste.
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.core.metrics import build_pricing

THRESHOLD = 0.55
FAST = {"asr": "asr_v4", "ic_cpu": "ic_cpu_squeezenet"}


def _cost_breakdown(measurements, fast):
    accurate = measurements.most_accurate_version()
    pricing = build_pricing(measurements)
    policies = {
        "osfa": SingleVersionPolicy(accurate),
        "seq": SequentialPolicy(fast, accurate, THRESHOLD),
        "conc": ConcurrentPolicy(fast, accurate, THRESHOLD),
        "et": EarlyTerminationPolicy(fast, accurate, THRESHOLD),
    }
    table = {}
    for name, policy in policies.items():
        outcomes = policy.evaluate(measurements)
        cost = outcomes.cost(pricing)
        table[name] = {
            "mean_invocation_cost": cost.invocation_cost / outcomes.n_requests,
            "iaas_per_version": {
                version: value / outcomes.n_requests
                for version, value in cost.per_version_iaas.items()
            },
        }
    return table


def test_fig6_policy_cost(benchmark, asr_measurements, ic_cpu_measurements):
    services = {"asr": asr_measurements, "ic_cpu": ic_cpu_measurements}
    result = benchmark(
        lambda: {
            name: _cost_breakdown(ms, FAST[name]) for name, ms in services.items()
        }
    )

    for name, table in result.items():
        rows = []
        for policy, entry in table.items():
            per_version = entry["iaas_per_version"]
            rows.append(
                [
                    policy,
                    entry["mean_invocation_cost"],
                    per_version.get(FAST[name], 0.0),
                    per_version.get(services[name].most_accurate_version(), 0.0),
                ]
            )
        print()
        print(
            format_table(
                ["policy", "invocation cost / req", "fast-version IaaS / req",
                 "accurate-version IaaS / req"],
                rows,
                title=f"FIG6 [{name}] cost breakdown per policy",
                float_format=".6f",
            )
        )
        # sequential spends the least on the accurate version; concurrent the
        # most; early termination sits in between
        accurate = services[name].most_accurate_version()
        seq_cost = table["seq"]["iaas_per_version"][accurate]
        et_cost = table["et"]["iaas_per_version"][accurate]
        conc_cost = table["conc"]["iaas_per_version"][accurate]
        assert seq_cost <= et_cost <= conc_cost
        # seq and et bill less than OSFA
        assert table["seq"]["mean_invocation_cost"] < table["osfa"]["mean_invocation_cost"]

    save_artifact("fig6_policy_cost", result)
