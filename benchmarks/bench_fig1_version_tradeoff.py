"""FIG1 — service-version accuracy vs latency (paper Fig. 1).

Regenerates the per-version operating points (mean error, mean latency,
Pareto membership) for the ASR service (7 beam-search configurations) and
the image-classification service on CPU and GPU (5 CNNs each).
"""

from conftest import save_artifact

from repro.analysis import format_table, version_pareto


def _rows(measurements):
    return [
        {
            "version": point.version,
            "mean_error": point.mean_error,
            "mean_latency_s": point.mean_latency_s,
            "pareto_optimal": point.on_frontier,
        }
        for point in version_pareto(measurements)
    ]


def test_fig1_version_tradeoff(
    benchmark, asr_measurements, ic_cpu_measurements, ic_gpu_measurements
):
    services = {
        "asr": asr_measurements,
        "ic_cpu": ic_cpu_measurements,
        "ic_gpu": ic_gpu_measurements,
    }
    result = benchmark(lambda: {name: _rows(ms) for name, ms in services.items()})

    for name, rows in result.items():
        print()
        print(
            format_table(
                ["version", "error", "latency (s)", "Pareto"],
                [
                    [r["version"], r["mean_error"], r["mean_latency_s"], r["pareto_optimal"]]
                    for r in rows
                ],
                title=f"FIG1 [{name}] accuracy-latency operating points",
            )
        )
        # the trade-off must exist: the most accurate version is slower than
        # the fastest one
        errors = [r["mean_error"] for r in rows]
        latencies = [r["mean_latency_s"] for r in rows]
        assert latencies[0] == min(latencies)
        assert min(errors) < errors[0]

    save_artifact("fig1_version_tradeoff", result)
