"""ABL3 — ensemble design-space width.

The paper reports that ensembles of more than two versions did not beat the
simple two-version policies.  This ablation compares three design spaces of
increasing width on the ASR service — single versions only, one fast
version + the most accurate, and every fast version + the most accurate —
and reports the savings each space can certify at the 5 % tier.
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import (
    RoutingRuleGenerator,
    SingleVersionPolicy,
    build_pricing,
    enumerate_configurations,
    evaluate_policy,
)

TOLERANCE = 0.05


def _space(measurements, width: str):
    if width == "singles":
        return enumerate_configurations(measurements, policy_kinds=("single",))
    if width == "one-pair":
        return enumerate_configurations(
            measurements,
            thresholds=(0.4, 0.5, 0.6, 0.7),
            fast_versions=["asr_v4"],
        )
    return enumerate_configurations(
        measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["asr_v2", "asr_v3", "asr_v4", "asr_v5", "asr_v6"],
    )


def test_abl3_ensemble_width(benchmark, asr_measurements):
    widths = ("singles", "one-pair", "all-pairs")

    # Shared pricing + OSFA baseline across the width comparison.
    pricing = build_pricing(asr_measurements)
    baseline = SingleVersionPolicy(
        asr_measurements.most_accurate_version()
    ).evaluate(asr_measurements)

    def run():
        results = {}
        for width in widths:
            configurations = _space(asr_measurements, width)
            generator = RoutingRuleGenerator(
                asr_measurements,
                configurations,
                confidence=0.99,
                seed=31,
                min_trials=8,
                max_trials=40,
            )
            table = generator.generate([TOLERANCE], "response-time")
            configuration = table.config_for(TOLERANCE)
            metrics = evaluate_policy(
                asr_measurements,
                configuration.policy,
                pricing=pricing,
                baseline_outcomes=baseline,
            )
            results[width] = {
                "space_size": len(configurations),
                "configuration": configuration.name,
                "time_saved": metrics.response_time_reduction,
                "degradation": metrics.error_degradation,
            }
        return results

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [width, r["space_size"], r["configuration"], r["time_saved"], r["degradation"]]
        for width, r in result.items()
    ]
    print()
    print(
        format_table(
            ["design space", "configurations", "chosen", "time saved", "degradation"],
            rows,
            title=f"ABL3 design-space width at the {TOLERANCE:.0%} tier (ASR)",
            float_format=".3f",
        )
    )

    # Ensembles certify far more saving than single versions alone, and the
    # wider pair space stays competitive with the single-pair space (bootstrap
    # noise in the worst-case estimates allows a few points of slack — the
    # paper's finding is precisely that wider spaces do not buy much more).
    assert (
        result["one-pair"]["time_saved"] >= result["singles"]["time_saved"] + 0.05
    )
    assert (
        result["all-pairs"]["time_saved"] >= result["one-pair"]["time_saved"] - 0.08
    )
    for r in result.values():
        assert r["degradation"] <= TOLERANCE + 1e-9

    save_artifact("abl3_ensemble_width", result)
