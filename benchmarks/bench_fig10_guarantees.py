"""FIG10 — held-out accuracy-guarantee audit (paper Section V).

Cross-validated audit of the tier guarantees for the IC-CPU service: rules
are generated from the training folds and replayed on held-out requests.
The paper reports zero violations across its evaluation; the benchmark
asserts the same.
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import audit_guarantees, enumerate_configurations


def test_fig10_guarantees(benchmark, ic_cpu_measurements):
    configurations = enumerate_configurations(
        ic_cpu_measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet"],
    )
    tolerances = [0.01, 0.02, 0.05, 0.10]

    audit = benchmark.pedantic(
        lambda: audit_guarantees(
            ic_cpu_measurements,
            tolerances=tolerances,
            objective="response-time",
            folds=5,
            confidence=0.999,
            seed=13,
            configurations=configurations,
            generator_kwargs={"min_trials": 8, "max_trials": 40},
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"{row.tolerance:.0%}",
            row.worst_degradation,
            row.mean_degradation,
            row.mean_response_time_reduction,
            row.violations,
        ]
        for row in audit.rows
    ]
    print()
    print(
        format_table(
            ["tier", "worst held-out degradation", "mean degradation",
             "mean time saved", "violations"],
            rows,
            title="FIG10 cross-validated guarantee audit (IC-CPU, response-time)",
            float_format=".4f",
        )
    )

    # The paper's central claim: no violations on held-out traffic.
    assert audit.total_violations == 0
    for row in audit.rows:
        assert row.worst_degradation <= row.tolerance + 1e-9

    save_artifact(
        "fig10_guarantees",
        {
            "total_violations": audit.total_violations,
            "rows": [
                {
                    "tolerance": row.tolerance,
                    "worst_degradation": row.worst_degradation,
                    "mean_time_saved": row.mean_response_time_reduction,
                }
                for row in audit.rows
            ],
        },
    )
