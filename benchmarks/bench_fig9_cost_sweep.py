"""FIG9 — cost objective tolerance sweep (paper Section V).

Same tolerance grid as FIG8 but with the invocation-cost objective; the
paper's anchors are 21 % @ 1 %, 60 % @ 5 % and 70 % @ 10 % cost reduction
(averaged across its services).
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import SingleVersionPolicy, build_pricing, evaluate_policy
from repro.core.tiers import default_tolerance_grid

PAPER_ANCHORS = {0.01: 0.21, 0.05: 0.60, 0.10: 0.70}


def _sweep(measurements, generator, tolerances):
    table = generator.generate(tolerances, "cost")
    # Shared pricing + OSFA baseline for the whole sweep (threaded through
    # evaluate_policy instead of being rebuilt per call).
    pricing = build_pricing(measurements)
    baseline = SingleVersionPolicy(
        measurements.most_accurate_version()
    ).evaluate(measurements)
    series = []
    for tolerance in tolerances:
        configuration = table.config_for(tolerance)
        metrics = evaluate_policy(
            measurements,
            configuration.policy,
            pricing=pricing,
            baseline_outcomes=baseline,
        )
        series.append(
            {
                "tolerance": tolerance,
                "configuration": configuration.name,
                "cost_reduction": metrics.cost_reduction,
                "error_degradation": metrics.error_degradation,
            }
        )
    return series


def test_fig9_cost_sweep(
    benchmark,
    asr_measurements,
    asr_generator,
    ic_cpu_measurements,
    ic_cpu_generator,
    ic_gpu_measurements,
    ic_gpu_generator,
):
    tolerances = default_tolerance_grid()
    services = {
        "asr": (asr_measurements, asr_generator),
        "ic_cpu": (ic_cpu_measurements, ic_cpu_generator),
        "ic_gpu": (ic_gpu_measurements, ic_gpu_generator),
    }
    result = benchmark(
        lambda: {
            name: _sweep(ms, gen, tolerances) for name, (ms, gen) in services.items()
        }
    )

    rows = []
    for name, series in result.items():
        by_tolerance = {round(p["tolerance"], 3): p for p in series}
        for anchor, paper_value in PAPER_ANCHORS.items():
            point = by_tolerance[round(anchor, 3)]
            rows.append(
                [
                    name,
                    f"{anchor:.0%}",
                    point["cost_reduction"],
                    paper_value,
                    point["error_degradation"],
                    point["configuration"],
                ]
            )
        reductions = [p["cost_reduction"] for p in series]
        assert all(b >= a - 0.02 for a, b in zip(reductions, reductions[1:]))
        for point in series:
            assert point["error_degradation"] <= point["tolerance"] + 1e-9
        assert by_tolerance[0.1]["cost_reduction"] > 0.05

    print()
    print(
        format_table(
            ["service", "tier", "cost saved", "paper (avg)", "degradation", "configuration"],
            rows,
            title="FIG9 invocation-cost reduction vs tolerance (cost objective)",
            float_format=".3f",
        )
    )
    save_artifact("fig9_cost_sweep", result)
