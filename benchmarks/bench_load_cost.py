"""LOAD2 — serving cost vs offered load, with pool autoscaling.

The cost companion to LOAD1: the same event-driven load sweep, but the
tier configurations come from the *cost* objective and both deployments
run under the queue-depth/utilization autoscaler, so pools grow with the
offered rate and shrink back when the queue drains.  Reported per sweep
point: mean billed invocation cost, provider-side node-seconds per
version, tail latency, and the autoscaler's footprint (scaling actions
and final pool sizes).  The tiered deployment should serve the same load
for at most the OSFA billed cost per request at one or more sweep points
(the 10 % cost tier routes most requests to cheap fast-version nodes).

Smoke mode (for CI): set ``REPRO_BENCH_SMOKE=1``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_load_cost.py -q -s
"""

import os

from conftest import save_artifact

from repro.analysis import format_table
from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import SingleVersionPolicy
from repro.service.gateway import SimulatedBackend, TierGateway
from repro.service.simulation import (
    AutoscalerConfig,
    BatchingConfig,
    PoissonArrivals,
    build_replay_cluster,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

TIER = 0.10
N_REQUESTS = 300 if SMOKE else 1200
LOAD_FRACTIONS = (0.7,) if SMOKE else (0.4, 0.7, 0.95)
#: Every pool starts at one node; the autoscaler does the sizing.
INITIAL_NODES = 1
BATCHING = BatchingConfig(max_batch_size=4, max_wait_s=0.01)


def _autoscaler_config():
    return AutoscalerConfig(
        min_nodes=INITIAL_NODES,
        max_nodes=8,
        scale_up_queue_depth=3.0,
        evaluation_interval_s=0.5,
        cooldown_s=1.0,
    )


def _pools(configuration):
    return {version: INITIAL_NODES for version in configuration.versions}


def _run(measurements, *, rate, configuration, seed):
    # Like LOAD1, the sweep exercises the public gateway API end to end.
    cluster = build_replay_cluster(measurements, _pools(configuration))
    gateway = TierGateway(
        SimulatedBackend(
            cluster,
            batching=BATCHING,
            autoscaler_config=_autoscaler_config(),
            seed=seed,
        ),
        configuration=configuration,
    )
    return gateway.run_load(
        PoissonArrivals(rate),
        N_REQUESTS,
        tolerance=TIER,
        payload_ids=measurements.request_ids,
    )


def test_load_cost_sweep(ic_cpu_measurements, ic_cpu_generator):
    measurements = ic_cpu_measurements
    accurate = measurements.most_accurate_version()
    osfa_config = EnsembleConfiguration("osfa", SingleVersionPolicy(accurate))
    table = ic_cpu_generator.generate([TIER], "cost")
    tier_config = table.config_for(TIER)

    capacity = 4 / measurements.mean_latency(accurate)
    rows, payload = [], []
    tiered_wins = 0
    for fraction in LOAD_FRACTIONS:
        rate = fraction * capacity
        osfa = _run(measurements, rate=rate, configuration=osfa_config, seed=7)
        tiered = _run(measurements, rate=rate, configuration=tier_config, seed=7)
        payload.append(
            {
                "load_fraction": fraction,
                "offered_rate_rps": rate,
                "osfa": {
                    **osfa.summary(),
                    "node_seconds": osfa.total_node_seconds,
                    "final_pool_sizes": osfa.final_pool_sizes,
                },
                "tiered": {
                    **tiered.summary(),
                    "node_seconds": tiered.total_node_seconds,
                    "final_pool_sizes": tiered.final_pool_sizes,
                },
            }
        )
        for name, report in (("osfa", osfa), ("tiered", tiered)):
            rows.append(
                [
                    f"{fraction:.0%}",
                    name,
                    1000.0 * report.mean_invocation_cost,
                    sum(report.total_node_seconds.values()),
                    report.p95_latency_s,
                    len(report.scaling_events),
                    sum(report.final_pool_sizes.values()),
                ]
            )
        if tiered.mean_invocation_cost <= osfa.mean_invocation_cost * (1 + 1e-9):
            tiered_wins += 1
        assert osfa.n_requests == N_REQUESTS
        assert tiered.n_requests == N_REQUESTS
        # the autoscaler reacted to load at every non-trivial rate
        if fraction >= 0.7:
            assert osfa.scaling_events or tiered.scaling_events

    # The cost tier serves the same offered load no more expensively than
    # OSFA at one or more sweep points.
    assert tiered_wins >= 1

    print()
    print(
        format_table(
            ["load", "deployment", "$/1k req", "node-s", "p95 (s)", "scalings", "final nodes"],
            rows,
            title=(
                f"LOAD2 serving cost vs offered load "
                f"(tier={TIER:.0%}, autoscaled, tiered config: {tier_config.name})"
            ),
            float_format=".4f",
        )
    )
    save_artifact("load_cost_sweep", {"sweep": payload})
