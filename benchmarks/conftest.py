"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md section 4).  The measurement tables and bootstrapped rule
generators they share are built once per session here; the ASR table (which
needs real beam-search decodes for 150 utterances x 7 versions) is cached on
disk under ``results/cache/`` so repeated benchmark runs start instantly.

Each benchmark prints the rows/series its paper artefact reports and writes
a JSON artefact under ``results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import RoutingRuleGenerator, enumerate_configurations
from repro.service import measure_asr_service, measure_ic_service

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
CACHE_DIR = RESULTS_DIR / "cache"

#: Sizes chosen so the whole benchmark suite runs in a few minutes while the
#: figure shapes remain stable.
ASR_UTTERANCES = 150
IC_REQUESTS = 4000


def save_artifact(name: str, payload: dict) -> Path:
    """Write a benchmark's reproduced rows/series to ``results/<name>.json``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


@pytest.fixture(scope="session")
def asr_measurements():
    """ASR measurements (150 utterances x 7 beam-search versions), disk-cached."""
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    return measure_asr_service(
        n_utterances=ASR_UTTERANCES,
        seed=20190324,
        cache_path=CACHE_DIR / f"asr_{ASR_UTTERANCES}.json",
    )


@pytest.fixture(scope="session")
def ic_cpu_measurements():
    """Calibrated CPU image-classification measurements."""
    return measure_ic_service(IC_REQUESTS, device="cpu", seed=2012)


@pytest.fixture(scope="session")
def ic_gpu_measurements():
    """Calibrated GPU image-classification measurements."""
    return measure_ic_service(IC_REQUESTS, device="gpu", seed=2012)


def _generator(measurements, *, fast_versions, seed):
    configurations = enumerate_configurations(
        measurements,
        thresholds=(0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.8),
        fast_versions=fast_versions,
    )
    return RoutingRuleGenerator(
        measurements,
        configurations,
        confidence=0.999,
        seed=seed,
        min_trials=10,
        max_trials=60,
    )


@pytest.fixture(scope="session")
def asr_generator(asr_measurements):
    """Bootstrapped rule generator for the ASR service."""
    return _generator(
        asr_measurements,
        fast_versions=["asr_v3", "asr_v4", "asr_v5", "asr_v6"],
        seed=1,
    )


@pytest.fixture(scope="session")
def ic_cpu_generator(ic_cpu_measurements):
    """Bootstrapped rule generator for the CPU image-classification service."""
    return _generator(
        ic_cpu_measurements,
        fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet", "ic_cpu_alexnet"],
        seed=2,
    )


@pytest.fixture(scope="session")
def ic_gpu_generator(ic_gpu_measurements):
    """Bootstrapped rule generator for the GPU image-classification service."""
    return _generator(
        ic_gpu_measurements,
        fast_versions=["ic_gpu_squeezenet", "ic_gpu_googlenet", "ic_gpu_alexnet"],
        seed=3,
    )
