"""PERF — the repository's performance-regression harness.

Times the three hot paths that gate everything else and writes the numbers
to ``BENCH_PERF.json`` at the repo root, seeding a performance trajectory
future PRs can diff against:

1. **Rule-generator construction** on the FIG7 configuration space, for
   three implementations:

   * ``vectorized`` — the default outcome-matrix engine;
   * ``legacy`` — the in-repo scalar oracle (already faster than the seed
     because policy evaluation no longer materialises request-id tuples);
   * ``pre_pr`` — a faithful reconstruction of the seed (pre-PR-2)
     bootstrap loop: a fresh baseline policy per trial and eager
     materialisation of both per-trial request-id tuples, exactly the
     overheads this PR removed.  All three must produce bit-identical
     worst-case estimates.

2. **Policy-evaluation throughput** (request-rows scored per second)
   through ``evaluate_policy`` with the shared pricing model and cached
   OSFA baseline threaded through.

3. **One ServingSimulator load run** (event-driven engine wall time and
   simulated requests per second).

Smoke mode (for CI): set ``REPRO_BENCH_SMOKE=1`` to run single timing
repetitions and relax the speedup floor (shared-runner timings are noisy).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -q -s
"""

import json
import os
import time
from pathlib import Path

import history
import numpy as np
from conftest import save_artifact

from repro.analysis import format_table
from repro.core import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    EnsembleConfiguration,
    RoutingRuleGenerator,
    SequentialPolicy,
    SingleVersionPolicy,
    WorstCaseEstimate,
    build_pricing,
    enumerate_configurations,
    evaluate_policy,
)
from repro.core.metrics import summarize_outcomes
from repro.service.simulation import (
    BatchingConfig,
    PoissonArrivals,
    ServingSimulator,
    build_replay_cluster,
)
from repro.stats.confidence import ConfidenceTest
from repro.stats.resampling import subsample_indices

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPS = 1 if SMOKE else 7
#: Minimum accepted construction speedup of the vectorized engine over the
#: reconstructed pre-PR loop.  On a quiet machine the engine lands >= 10x
#: (the committed BENCH_PERF.json records the canonical numbers); the hard
#: regression gate keeps a noise margin because CI runners and 1-vCPU
#: containers time small numpy ops erratically under contention.
SPEEDUP_FLOOR = 3.0 if SMOKE else 7.0
#: Minimum accepted columnar-over-legacy speedup of the serving
#: simulator, measured engine-vs-engine in the same process so machine
#: state cancels out.  On a quiet machine the columnar engine lands
#: >= 10x the recorded pre-PR baseline (see BENCH_PERF.json); the gate
#: keeps margin for contended CI runners and tiny smoke workloads.
SIM_SPEEDUP_FLOOR = 2.0 if SMOKE else 5.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PERF.json"

GENERATOR_KW = dict(confidence=0.999, seed=7, min_trials=10, max_trials=60)
SIM_REQUESTS = 400 if SMOKE else 2000


def _fig7_space(measurements):
    """The FIG7 benchmark's configuration space (29 configurations)."""
    return enumerate_configurations(
        measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet"],
    )


def _pre_pr_bootstrap(
    measurements,
    configuration,
    *,
    confidence_test,
    rng,
    pricing,
    baseline_version,
    sample_fraction=0.1,
):
    """The seed repository's bootstrap trial loop, reconstructed.

    Identical arithmetic to today's scalar oracle — the extra work below
    (fresh baseline policy per trial, eager request-id tuples) reproduces
    the Python-object overhead the seed paid per trial, so timing this
    loop measures the pre-PR implementation on current hardware.
    """
    sample_size = max(2, int(round(measurements.n_requests * sample_fraction)))
    trials = []
    while True:
        indices = subsample_indices(measurements.n_requests, sample_size, rng=rng)
        baseline_policy = SingleVersionPolicy(baseline_version)
        baseline = baseline_policy.evaluate(measurements, indices)
        outcomes = configuration.policy.evaluate(measurements, indices)
        tuple(baseline.request_ids)
        tuple(outcomes.request_ids)
        trials.append(
            summarize_outcomes(outcomes, baseline, pricing, degradation_mode="relative")
        )
        columns = (
            [t.error_degradation for t in trials],
            [t.mean_response_time_s for t in trials],
            [t.mean_invocation_cost for t in trials],
        )
        if confidence_test.all_satisfied(columns):
            break
    return WorstCaseEstimate(
        config_id=configuration.config_id,
        error_degradation=max(t.error_degradation for t in trials),
        mean_response_time_s=max(t.mean_response_time_s for t in trials),
        mean_invocation_cost=max(t.mean_invocation_cost for t in trials),
        n_trials=len(trials),
    )


def _pre_pr_generator_results(measurements, configurations):
    """Bootstrap the whole space with the reconstructed pre-PR loop."""
    test = ConfidenceTest(
        confidence=GENERATOR_KW["confidence"],
        min_trials=GENERATOR_KW["min_trials"],
        max_trials=GENERATOR_KW["max_trials"],
    )
    rng = np.random.default_rng(GENERATOR_KW["seed"])
    pricing = build_pricing(measurements)
    baseline_version = measurements.most_accurate_version()
    return [
        _pre_pr_bootstrap(
            measurements,
            configuration,
            confidence_test=test,
            rng=rng,
            pricing=pricing,
            baseline_version=baseline_version,
        )
        for configuration in configurations
    ]


def _best_time(fn, reps=REPS):
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _estimates_equal(a, b):
    return all(
        x.config_id == y.config_id
        and x.n_trials == y.n_trials
        and x.error_degradation == y.error_degradation
        and x.mean_response_time_s == y.mean_response_time_s
        and x.mean_invocation_cost == y.mean_invocation_cost
        for x, y in zip(a, b)
    )


def test_perf_rule_generator(ic_cpu_measurements):
    measurements = ic_cpu_measurements
    configurations = _fig7_space(measurements)

    # Warm one-time costs (scipy quantile evaluation, numpy ufunc setup)
    # out of the timed region.
    RoutingRuleGenerator(
        measurements, configurations[:2], engine="vectorized", **GENERATOR_KW
    )

    timings = {}
    generators = {}
    for engine in ("vectorized", "legacy"):
        timings[engine], generators[engine] = _best_time(
            lambda engine=engine: RoutingRuleGenerator(
                measurements, configurations, engine=engine, **GENERATOR_KW
            )
        )
    timings["pre_pr"], pre_pr_results = _best_time(
        lambda: _pre_pr_generator_results(measurements, configurations)
    )

    # All three implementations are the same computation: bit-identical
    # worst-case estimates, hence identical rule tables.
    assert _estimates_equal(
        generators["vectorized"].results, generators["legacy"].results
    )
    assert _estimates_equal(generators["vectorized"].results, pre_pr_results)
    tables = {}
    for objective in ("response-time", "cost"):
        rules = {
            engine: {
                tolerance: config.config_id
                for tolerance, config in generators[engine]
                .generate([0.01, 0.05, 0.10], objective)
                .rules.items()
            }
            for engine in generators
        }
        assert rules["vectorized"] == rules["legacy"]
        tables[objective] = rules["vectorized"]

    n_trials = sum(e.n_trials for e in generators["vectorized"].results)
    speedup_pre_pr = timings["pre_pr"] / timings["vectorized"]
    speedup_scalar = timings["legacy"] / timings["vectorized"]
    rows = [
        [name, timings[name], n_trials / timings[name], timings[name] / timings["vectorized"]]
        for name in ("pre_pr", "legacy", "vectorized")
    ]
    print()
    print(
        format_table(
            ["implementation", "construction (s)", "trials/s", "x slower than vectorized"],
            rows,
            title=f"PERF rule-generator construction ({len(configurations)} configs, "
            f"{measurements.n_requests} requests, {n_trials} trials)",
            float_format=".3f",
        )
    )
    assert speedup_pre_pr >= SPEEDUP_FLOOR, (
        f"vectorized engine is only {speedup_pre_pr:.1f}x faster than the "
        f"pre-PR loop (floor {SPEEDUP_FLOOR}x)"
    )

    _merge_output(
        {
            "rule_generator": {
                "n_configurations": len(configurations),
                "n_requests": measurements.n_requests,
                "n_trials": n_trials,
                "wall_s": {k: round(v, 6) for k, v in timings.items()},
                "trials_per_s": {
                    k: round(n_trials / v, 1) for k, v in timings.items()
                },
                "speedup_vs_pre_pr": round(speedup_pre_pr, 2),
                "speedup_vs_legacy_oracle": round(speedup_scalar, 2),
                "rule_tables": tables,
                "smoke": SMOKE,
            }
        }
    )


def test_perf_policy_evaluation(ic_cpu_measurements):
    measurements = ic_cpu_measurements
    accurate = measurements.most_accurate_version()
    fast = "ic_cpu_squeezenet"
    policies = [
        SingleVersionPolicy(accurate),
        SequentialPolicy(fast, accurate, 0.55),
        ConcurrentPolicy(fast, accurate, 0.55),
        EarlyTerminationPolicy(fast, accurate, 0.55),
    ]
    pricing = build_pricing(measurements)
    baseline = SingleVersionPolicy(accurate).evaluate(measurements)
    repeats = 2 if SMOKE else 10

    def run():
        for _ in range(repeats):
            for policy in policies:
                evaluate_policy(
                    measurements,
                    policy,
                    pricing=pricing,
                    baseline_outcomes=baseline,
                )

    wall, _ = _best_time(run)
    rows_scored = measurements.n_requests * len(policies) * repeats
    throughput = rows_scored / wall
    print()
    print(
        f"PERF policy evaluation: {rows_scored} request-rows in {wall:.3f}s "
        f"-> {throughput:,.0f} rows/s"
    )
    assert throughput > 100_000  # far below any plausible regression line

    _merge_output(
        {
            "policy_evaluation": {
                "request_rows": rows_scored,
                "wall_s": round(wall, 6),
                "rows_per_s": round(throughput, 1),
                "smoke": SMOKE,
            }
        }
    )


def test_perf_serving_simulator(ic_cpu_measurements):
    measurements = ic_cpu_measurements
    accurate = measurements.most_accurate_version()
    fast = "ic_cpu_squeezenet"
    threshold = 0.55
    configuration = EnsembleConfiguration(
        "perf_seq", SequentialPolicy(fast, accurate, threshold)
    )
    # Offer 70 % of the binding pool's capacity so the run exercises real
    # queueing without saturating (the fast pool serves every request, the
    # accurate pool only the escalated fraction).
    escalation = float(
        (measurements.column(fast, "confidence") < threshold).mean()
    )
    fast_capacity = 2.0 / measurements.mean_latency(fast)
    accurate_capacity = 2.0 / measurements.mean_latency(accurate)
    rate = 0.7 * min(fast_capacity, accurate_capacity / max(escalation, 1e-9))

    def run(engine):
        cluster = build_replay_cluster(measurements, {fast: 2, accurate: 2})
        simulator = ServingSimulator(
            cluster,
            configuration=configuration,
            batching=BatchingConfig(max_batch_size=4, max_wait_s=0.01),
            seed=11,
            engine=engine,
        )
        return simulator.run(
            PoissonArrivals(rate),
            SIM_REQUESTS,
            payload_ids=measurements.request_ids,
        )

    # The headline engine and its scalar oracle, timed back to back in
    # the same process so machine state cancels out of the speedup.
    wall, report = _best_time(lambda: run("columnar"))
    legacy_wall, legacy_report = _best_time(lambda: run("legacy"))
    throughput = SIM_REQUESTS / wall
    legacy_throughput = SIM_REQUESTS / legacy_wall
    speedup = legacy_wall / wall
    print()
    print(
        f"PERF serving simulator: {SIM_REQUESTS} simulated requests in "
        f"{wall:.3f}s -> {throughput:,.0f} requests/s columnar "
        f"({legacy_throughput:,.0f} legacy, {speedup:.1f}x) "
        f"(sim p95 {report.p95_latency_s:.3f}s)"
    )
    assert report.n_requests == SIM_REQUESTS
    # The differential contract, asserted on the benchmark workload too:
    # speed without bit-identical behaviour is a bug, not a result.
    assert report.digest() == legacy_report.digest(), (
        "columnar and legacy engines diverged on the benchmark workload"
    )
    assert speedup >= SIM_SPEEDUP_FLOOR, (
        f"columnar engine only {speedup:.2f}x over legacy "
        f"(floor {SIM_SPEEDUP_FLOOR}x)"
    )

    _merge_output(
        {
            "serving_simulator": {
                "n_requests": SIM_REQUESTS,
                "wall_s": round(wall, 6),
                "requests_per_s": round(throughput, 1),
                "legacy_wall_s": round(legacy_wall, 6),
                "legacy_requests_per_s": round(legacy_throughput, 1),
                "speedup_vs_legacy": round(speedup, 2),
                "sim_p95_latency_s": round(report.p95_latency_s, 6),
                "smoke": SMOKE,
            }
        }
    )


#: Noise ceiling for the tracing-disabled A/A comparison (two identical
#: runs with no collector attached).  The engine's guard is a single
#: ``if self._trace is not None`` per hook site, so the true disabled
#: overhead is ~0% — the committed BENCH_PERF.json records the canonical
#: measured figure (< 1% on a quiet machine); the hard gate keeps a
#: noise margin for contended CI runners.
OBS_AA_CEILING_PCT = 50.0 if SMOKE else 10.0
#: Ceiling on the *enabled* recording cost, as a multiple of the
#: disabled wall time, per engine.  Legacy recording pays per-event
#: hooks inside an already-slow loop, so its multiple stays small.
#: Columnar recording is a post-hoc reconstruction: the hot path is
#: untouched, but building ~4 Python span objects per request is
#: measured against a wall time the vectorized engine keeps tiny, so
#: the *ratio* runs high even though the absolute cost (see
#: ``spans_per_s``) is ~10 us/span.
OBS_ENABLED_CEILING = {"columnar": 10.0, "legacy": 3.0}


def test_perf_observability(ic_cpu_measurements):
    """Tracing cost: disabled must be free, enabled must be bounded.

    Times the serving-simulator benchmark workload four ways — columnar
    and legacy, with and without a trace collector — plus a disabled
    A/A pair, and asserts the digest-neutrality contract on the
    benchmark workload itself: attaching a collector must not move the
    report digest by a single bit.
    """
    from repro.obs import TraceCollector

    measurements = ic_cpu_measurements
    accurate = measurements.most_accurate_version()
    fast = "ic_cpu_squeezenet"
    threshold = 0.55
    configuration = EnsembleConfiguration(
        "perf_seq", SequentialPolicy(fast, accurate, threshold)
    )
    escalation = float(
        (measurements.column(fast, "confidence") < threshold).mean()
    )
    fast_capacity = 2.0 / measurements.mean_latency(fast)
    accurate_capacity = 2.0 / measurements.mean_latency(accurate)
    rate = 0.7 * min(fast_capacity, accurate_capacity / max(escalation, 1e-9))

    def run(engine, with_trace):
        cluster = build_replay_cluster(measurements, {fast: 2, accurate: 2})
        collector = TraceCollector() if with_trace else None
        simulator = ServingSimulator(
            cluster,
            configuration=configuration,
            batching=BatchingConfig(max_batch_size=4, max_wait_s=0.01),
            seed=11,
            engine=engine,
            trace=collector,
        )
        report = simulator.run(
            PoissonArrivals(rate),
            SIM_REQUESTS,
            payload_ids=measurements.request_ids,
        )
        return report, collector

    # Warm both engines before any timed cell: the very first run of a
    # variant pays one-time import and allocator costs that would
    # otherwise land entirely on whichever cell happens to go first and
    # poison the A/A comparison below.
    run("columnar", False)
    run("legacy", False)

    walls, reports, collectors = {}, {}, {}
    # Time the disabled A/A pair back-to-back so the comparison sees
    # only timer noise, not machine-state drift across the other cells.
    walls["columnar_off"], (
        reports["columnar_off"],
        collectors["columnar_off"],
    ) = _best_time(lambda: run("columnar", False))
    aa_wall, _ = _best_time(lambda: run("columnar", False))
    aa_pct = abs(aa_wall - walls["columnar_off"]) / walls["columnar_off"] * 100

    for engine, with_trace in (
        ("columnar", True),
        ("legacy", False),
        ("legacy", True),
    ):
        key = f"{engine}_{'on' if with_trace else 'off'}"
        walls[key], (reports[key], collectors[key]) = _best_time(
            lambda engine=engine, with_trace=with_trace: run(
                engine, with_trace
            )
        )

    # Digest neutrality on the benchmark workload, both engines.
    for engine in ("columnar", "legacy"):
        assert (
            reports[f"{engine}_on"].digest()
            == reports[f"{engine}_off"].digest()
        ), f"tracing changed the {engine} report digest"

    collector = collectors["columnar_on"]
    n_spans = sum(len(t.spans) for t in collector.traces)
    assert len(collector) == SIM_REQUESTS
    spans_per_s = n_spans / walls["columnar_on"]
    overhead = {
        engine: walls[f"{engine}_on"] / walls[f"{engine}_off"]
        for engine in ("columnar", "legacy")
    }
    print()
    print(
        f"PERF observability: disabled A/A {aa_pct:.2f}% | "
        f"columnar enabled {overhead['columnar']:.2f}x "
        f"({spans_per_s:,.0f} spans/s) | "
        f"legacy enabled {overhead['legacy']:.2f}x"
    )
    assert aa_pct <= OBS_AA_CEILING_PCT, (
        f"tracing-disabled A/A runs differ by {aa_pct:.1f}% "
        f"(ceiling {OBS_AA_CEILING_PCT}%)"
    )
    for engine, ceiling in OBS_ENABLED_CEILING.items():
        assert overhead[engine] <= ceiling, (
            f"{engine} recording costs {overhead[engine]:.2f}x disabled "
            f"(ceiling {ceiling}x)"
        )

    _merge_output(
        {
            "observability": {
                "n_requests": SIM_REQUESTS,
                "disabled_wall_s": round(walls["columnar_off"], 6),
                "disabled_aa_overhead_pct": round(aa_pct, 3),
                "enabled_wall_s": round(walls["columnar_on"], 6),
                "enabled_overhead_x": round(overhead["columnar"], 3),
                "legacy_enabled_wall_s": round(walls["legacy_on"], 6),
                "legacy_enabled_overhead_x": round(overhead["legacy"], 3),
                "n_spans": n_spans,
                "spans_per_s": round(spans_per_s, 1),
                "smoke": SMOKE,
            }
        }
    )


#: Which harness produces each BENCH_PERF.json section — recorded as the
#: ``source`` of that section's longitudinal history entries.
_SECTION_SOURCES = {
    "rule_generator": "bench_perf",
    "policy_evaluation": "bench_perf",
    "serving_simulator": "bench_perf",
    "observability": "bench_perf",
    "control_plane": "bench_control_plane",
    "resilience": "bench_resilience",
    "regions": "bench_regions",
}


def _merge_output(section):
    """Merge a benchmark section into BENCH_PERF.json (and results/).

    Smoke runs only write the ``results/`` copy: the root file is the
    committed perf trajectory and must hold full-repetition numbers, not
    noisy single-rep CI timings.  In smoke mode sections accumulate in
    the ``results/`` copy instead, so ``compare_perf.py`` sees all three
    sections, not just whichever test ran last.

    Every merge also appends one entry per section to the append-only
    longitudinal history (``results/bench_history.jsonl``), tagged with
    commit / machine / engine / smoke metadata, so the single committed
    point grows into a trajectory the trend checks can condition on.
    History recording must never fail a benchmark: IO problems are
    reported and swallowed.
    """
    target = OUTPUT if not SMOKE else None
    source = (
        target
        if target is not None
        else Path(__file__).resolve().parent.parent
        / "results"
        / "bench_perf.json"
    )
    payload = {}
    if source.exists():
        try:
            payload = json.loads(source.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(section)
    if target is not None:
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    save_artifact("bench_perf", payload)

    for name, body in section.items():
        try:
            history.record_run(
                {name: body},
                source=_SECTION_SOURCES.get(name, "bench_perf"),
                smoke=SMOKE,
            )
        except OSError as exc:
            print(f"bench_perf: history append failed for {name}: {exc}")
