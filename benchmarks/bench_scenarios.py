"""SCEN — degraded-mode resilience: tiered deployment vs OSFA.

The load benchmarks (LOAD1/LOAD2) compare tail latency and cost on
*healthy* clusters; this benchmark puts the same tier-mix question under
the six canonical fault-injection scenarios
(:func:`repro.service.simulation.scenarios.canonical_scenarios`): healthy
baseline, flash-crowd spike, diurnal wave, node crash with recovery, a
straggler, and a flaky transient-fault window with retries.

Both deployments get the same node budget.  The tiered deployment splits
it between a fast pool and an accurate pool behind the canonical
``seq(fast, slow, 0.6)`` ensemble; OSFA spends the whole budget on the
accurate version, and every infrastructure fault is remapped onto that
pool (a crash is a crash — it hits whatever you deployed).  Per scenario
we report availability, p95 latency, goodput, retries and mean billed
cost, and assert the determinism contract (same spec + seed -> same
digest).

Smoke mode (for CI): set ``REPRO_BENCH_SMOKE=1`` to shrink request
counts.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q -s
"""

import math
import os
from dataclasses import replace

from conftest import save_artifact

from repro.analysis import format_table
from repro.service.simulation import (
    NodeCrash,
    NodeSlowdown,
    TransientFaults,
    canonical_scenarios,
    osfa_configuration,
    run_scenario,
    scenario_measurements,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_REQUESTS = 80 if SMOKE else None  # None keeps each spec's own size


def _osfa_variant(spec):
    """The OSFA counterpart: same node budget, accurate version only.

    Faults are remapped onto the single pool — infrastructure failures do
    not care which model the dead machine was serving — with node indices
    clamped into the merged pool.
    """
    budget = sum(spec.pools.values())
    faults = []
    for fault in spec.faults:
        if isinstance(fault, (NodeCrash, NodeSlowdown)):
            faults.append(
                replace(
                    fault,
                    version="slow",
                    node_index=min(fault.node_index, budget - 1),
                )
            )
        elif isinstance(fault, TransientFaults):
            faults.append(replace(fault, versions=("slow",)))
        else:
            faults.append(fault)
    return replace(
        spec,
        name=f"{spec.name}-osfa",
        pools={"slow": budget},
        configuration=osfa_configuration(),
        faults=tuple(faults),
    )


def _row(name, deployment, report):
    summary = report.summary()
    return [
        name,
        deployment,
        summary["availability"],
        summary["p95_latency_s"],
        summary["goodput_rps"],
        summary["total_retries"],
        summary["mean_invocation_cost"] * 1e6,
    ]


def test_scenario_resilience_sweep():
    measurements = scenario_measurements()
    specs = canonical_scenarios()
    rows = []
    artifact = {}
    for name, spec in specs.items():
        if N_REQUESTS is not None:
            spec = replace(spec, n_requests=N_REQUESTS)
        tiered = run_scenario(spec, measurements, check_invariants=True)
        osfa = run_scenario(
            _osfa_variant(spec), measurements, check_invariants=True
        )

        # Determinism contract: every scenario reproduces its own digest.
        again = run_scenario(spec, measurements, check_invariants=True)
        assert tiered.digest() == again.digest(), name

        for deployment, report in (("tiered", tiered), ("osfa", osfa)):
            assert report.n_requests == spec.n_requests
            assert 0.0 <= report.availability <= 1.0
            rows.append(_row(name, deployment, report))
            artifact[f"{name}/{deployment}"] = {
                **{
                    k: (None if isinstance(v, float) and math.isnan(v) else v)
                    for k, v in report.summary().items()
                },
                "digest": report.digest(),
            }

    print()
    print(
        format_table(
            [
                "scenario",
                "deployment",
                "availability",
                "p95 (s)",
                "goodput (r/s)",
                "retries",
                "cost/req (µ$)",
            ],
            rows,
            title=(
                "SCEN resilience sweep: tiered (seq fast->slow @0.6) vs "
                "OSFA, equal node budget"
            ),
            float_format=".3f",
        )
    )

    # The headline resilience claim: the tiered deployment is never *less*
    # available than OSFA across the canonical scenarios (its fast pool
    # keeps answering confident requests when the accurate pool degrades),
    # and on the healthy baseline both must answer everything.
    by_key = {(r[0], r[1]): r[2] for r in rows}
    for name in specs:
        assert by_key[(name, "tiered")] >= by_key[(name, "osfa")] - 1e-9, name
    assert by_key[("baseline", "tiered")] == 1.0
    assert by_key[("baseline", "osfa")] == 1.0

    save_artifact("bench_scenarios", {"smoke": SMOKE, "results": artifact})
