"""FIG8 — response-time objective tolerance sweep (paper Section V).

Sweeps tolerances from 0.1 % to 10 % in 0.1 % steps (the paper's grid) for
the ASR, IC-CPU and IC-GPU services with the response-time objective, and
reports the latency reduction each tier achieves relative to OSFA together
with the paper's headline anchor points (19 % @ 1 %, 45 % @ 5 %, 60 % @ 10 %
averaged across its services).
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import SingleVersionPolicy, build_pricing, evaluate_policy
from repro.core.tiers import default_tolerance_grid

PAPER_ANCHORS = {0.01: 0.19, 0.05: 0.45, 0.10: 0.60}


def _sweep(measurements, generator, tolerances):
    table = generator.generate(tolerances, "response-time")
    # One pricing model and one OSFA baseline evaluation for the whole
    # sweep instead of rebuilding both on every evaluate_policy call.
    pricing = build_pricing(measurements)
    baseline = SingleVersionPolicy(
        measurements.most_accurate_version()
    ).evaluate(measurements)
    series = []
    for tolerance in tolerances:
        configuration = table.config_for(tolerance)
        metrics = evaluate_policy(
            measurements,
            configuration.policy,
            pricing=pricing,
            baseline_outcomes=baseline,
        )
        series.append(
            {
                "tolerance": tolerance,
                "configuration": configuration.name,
                "response_time_reduction": metrics.response_time_reduction,
                "error_degradation": metrics.error_degradation,
            }
        )
    return series


def test_fig8_latency_sweep(
    benchmark,
    asr_measurements,
    asr_generator,
    ic_cpu_measurements,
    ic_cpu_generator,
    ic_gpu_measurements,
    ic_gpu_generator,
):
    tolerances = default_tolerance_grid()  # 0.1 % .. 10 % in 0.1 % steps
    services = {
        "asr": (asr_measurements, asr_generator),
        "ic_cpu": (ic_cpu_measurements, ic_cpu_generator),
        "ic_gpu": (ic_gpu_measurements, ic_gpu_generator),
    }
    result = benchmark(
        lambda: {
            name: _sweep(ms, gen, tolerances) for name, (ms, gen) in services.items()
        }
    )

    rows = []
    payload = {}
    for name, series in result.items():
        by_tolerance = {round(p["tolerance"], 3): p for p in series}
        payload[name] = series
        for anchor, paper_value in PAPER_ANCHORS.items():
            point = by_tolerance[round(anchor, 3)]
            rows.append(
                [
                    name,
                    f"{anchor:.0%}",
                    point["response_time_reduction"],
                    paper_value,
                    point["error_degradation"],
                    point["configuration"],
                ]
            )
        # savings never decrease as the tolerance loosens
        reductions = [p["response_time_reduction"] for p in series]
        assert all(b >= a - 0.02 for a, b in zip(reductions, reductions[1:]))
        # degradation always honoured on the training measurements
        for point in series:
            assert point["error_degradation"] <= point["tolerance"] + 1e-9
        # the 10 % tier buys a real latency saving
        assert by_tolerance[0.1]["response_time_reduction"] > 0.15

    print()
    print(
        format_table(
            ["service", "tier", "time saved", "paper (avg)", "degradation", "configuration"],
            rows,
            title="FIG8 latency reduction vs tolerance (response-time objective)",
            float_format=".3f",
        )
    )
    save_artifact("fig8_latency_sweep", payload)
