"""Advisory perf-regression comparison for BENCH_PERF.json.

Compares the timing sections of a freshly produced ``bench_perf`` artefact
against the committed baseline at the repo root and prints the relative
deltas.  Timings beyond the threshold (default ±5 %, the advisory noise
band the delta-rs benchmarking ADR recommends for shared runners) are
flagged as ``ADVISORY`` lines.

The comparison is **advisory by design**: shared CI runners time small
workloads noisily, so the exit code is always 0 unless ``--strict`` is
given.  The committed ``BENCH_PERF.json`` (full-repetition numbers from a
quiet machine) remains the perf trajectory of record; this script exists
so a perf regression shows up in the CI log of the PR that caused it, not
three PRs later.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -q -s  # fresh run
    python benchmarks/compare_perf.py BENCH_PERF.json results/bench_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (section, metric) pairs compared, with direction: +1 means larger is
#: better (throughput), -1 means smaller is better (wall time).  The
#: ``control_plane`` metrics are deterministic simulation outputs, not
#: timings: any delta at all is a behaviour change in the closed loop,
#: so the same advisory gate doubles as a behavioural drift detector.
METRICS = (
    ("rule_generator", "trials_per_s", +1),
    ("policy_evaluation", "rows_per_s", +1),
    ("serving_simulator", "requests_per_s", +1),
    ("serving_simulator", "speedup_vs_legacy", +1),
    ("control_plane", "goodput_rps", +1),
    ("control_plane", "p95_latency_s", -1),
    ("control_plane", "node_seconds", -1),
    ("resilience", "goodput_retention", +1),
    ("resilience", "p95_inflation", -1),
    ("resilience", "time_to_recover_s", -1),
    ("resilience", "retry_amplification", -1),
)


def compare(baseline: dict, fresh: dict, threshold: float):
    """Yield ``(label, old, new, delta, flagged)`` rows for known metrics."""
    for section, metric, direction in METRICS:
        old_section = baseline.get(section, {})
        new_section = fresh.get(section, {})
        old = old_section.get(metric)
        new = new_section.get(metric)
        if old is None or new is None or not old:
            continue
        if isinstance(old, dict) or isinstance(new, dict):
            # per-engine breakdowns: compare matching keys
            for key in sorted(set(old) & set(new)):
                if not old[key]:
                    continue
                delta = (new[key] - old[key]) / old[key]
                flagged = direction * delta < -threshold
                yield f"{section}.{metric}.{key}", old[key], new[key], delta, flagged
            continue
        delta = (new - old) / old
        flagged = direction * delta < -threshold
        yield f"{section}.{metric}", old, new, delta, flagged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_PERF.json")
    parser.add_argument("fresh", type=Path, help="freshly produced artefact")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="advisory regression threshold as a fraction (default 0.05)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any metric regresses past the threshold",
    )
    args = parser.parse_args(argv)

    for path in (args.baseline, args.fresh):
        if not path.exists():
            print(f"compare_perf: {path} not found; nothing to compare")
            return 0

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    if fresh.get("rule_generator", {}).get("smoke") or any(
        fresh.get(s, {}).get("smoke") for s, _, _ in METRICS
    ):
        print(
            "compare_perf: fresh artefact is a smoke run — deltas are "
            "advisory noise estimates, not trajectory numbers"
        )

    flagged_any = False
    rows = list(compare(baseline, fresh, args.threshold))
    if not rows:
        print("compare_perf: no comparable metrics found")
        return 0
    width = max(len(label) for label, *_ in rows)
    for label, old, new, delta, flagged in rows:
        marker = "ADVISORY regression" if flagged else "ok"
        flagged_any = flagged_any or flagged
        print(
            f"{label:<{width}}  {old:>14,.1f} -> {new:>14,.1f}  "
            f"({delta:+7.1%})  {marker}"
        )
    if flagged_any:
        print(
            f"\ncompare_perf: at least one metric regressed past "
            f"±{args.threshold:.0%} — advisory only; investigate before "
            "trusting the committed baseline"
        )
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
