"""Perf-regression comparison for BENCH_PERF.json — point and longitudinal.

Three modes share one metric registry and one reporting format:

**Two-artefact mode** (the original gate)::

    python benchmarks/compare_perf.py BENCH_PERF.json results/bench_perf.json

compares a fresh artefact against the committed baseline and prints
relative deltas; timings beyond the threshold (default ±5 %, the
advisory noise band the delta-rs benchmarking ADR recommends for shared
runners) are flagged ``ADVISORY``.  Three historical bugs are fixed and
pinned by ``tests/benchmarks/test_compare_perf.py``:

* a metric that is a dict in one artefact and a scalar in the other
  (a section gaining per-engine breakdowns) is reported as an explicit
  ``schema changed`` row instead of crashing on ``set(old) & set(new)``;
* zero baselines are compared, not skipped — a metric like
  ``resilience.time_to_recover_s`` regressing from ``0.0`` is exactly
  the transition that must be loudest, and is reported as an explicit
  ``zero baseline`` row (only the division is guarded);
* a smoke-run artefact (single-repetition CI timings) is no longer
  flagged line-by-line against the full-repetition committed baseline —
  per-metric flags are suppressed for sections whose smoke tags differ,
  so fast-tier logs stop accumulating false ADVISORY regressions.

**History mode**::

    python benchmarks/compare_perf.py --against-history results/bench_perf.json

scores the fresh artefact against the longitudinal history
(``results/bench_history.jsonl``, see ``benchmarks/history.py``): each
metric's fresh value is z-scored against the noise of *like-for-like*
history entries (smoke runs against smoke-tagged entries only), and the
whole series is scanned for step changes with the
``ConfidenceTest``-conditioned changepoint detector — the measured
noise history sets the bar, not a fixed band.

**Branch mode**::

    python benchmarks/compare_perf.py --branch-vs-main

compares the current branch's history entries against main's on the
same detector.

All modes are advisory by default (exit 0); ``--strict`` exits non-zero
when a non-suppressed regression is flagged.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

#: (section, metric, direction) triples compared, with direction: +1 means
#: larger is better (throughput), -1 means smaller is better (wall time).
#: The ``control_plane`` and ``resilience`` metrics are deterministic
#: simulation outputs, not timings: any delta at all is a behaviour change
#: in the closed loop, so the same advisory gate doubles as a behavioural
#: drift detector.
METRICS = (
    ("rule_generator", "trials_per_s", +1),
    ("policy_evaluation", "rows_per_s", +1),
    ("serving_simulator", "requests_per_s", +1),
    ("serving_simulator", "speedup_vs_legacy", +1),
    ("control_plane", "goodput_rps", +1),
    ("control_plane", "p95_latency_s", -1),
    ("control_plane", "node_seconds", -1),
    ("resilience", "goodput_retention", +1),
    ("resilience", "p95_inflation", -1),
    ("resilience", "time_to_recover_s", -1),
    ("resilience", "retry_amplification", -1),
)

#: Minimum like-for-like history entries before a trend verdict is
#: attempted; below this the history rows are informational.
MIN_HISTORY = 5


@dataclass(frozen=True)
class Row:
    """One comparison verdict.

    Attributes:
        label: Dotted metric label (``section.metric[.key]``).
        old: Baseline value (``None`` for schema-change rows).
        new: Fresh value (``None`` for schema-change rows).
        delta: Relative delta (``None`` when undefined: schema changes
            and zero baselines).
        flagged: True when the row is an advisory regression.
        note: Human-readable qualifier (schema change, zero baseline,
            smoke suppression, trend statistics).
    """

    label: str
    old: Optional[float]
    new: Optional[float]
    delta: Optional[float]
    flagged: bool
    note: str = ""


def _metric_direction(label: str) -> Optional[int]:
    """Direction for a flat ``section.metric[.key]`` label, if gated."""
    for section, metric, direction in METRICS:
        prefix = f"{section}.{metric}"
        if label == prefix or label.startswith(prefix + "."):
            return direction
    return None


def _compare_scalar(
    label: str,
    old: object,
    new: object,
    direction: int,
    threshold: float,
    *,
    suppress: bool,
) -> Iterator[Row]:
    """Compare one scalar pair, guarding only the division by zero."""
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
        yield Row(
            label,
            None,
            None,
            None,
            False,
            note=f"schema changed: {type(old).__name__} vs {type(new).__name__}"
            " — not comparable",
        )
        return
    old = float(old)
    new = float(new)
    if old == 0.0:
        if new == 0.0:
            yield Row(label, old, new, 0.0, False)
            return
        # The transition off a zero baseline is undefined as a relative
        # delta but is precisely the change that must be reported, not
        # skipped: flag it when it moves in the regression direction.
        adverse = direction * (new - old) < 0.0
        note = "zero baseline — relative delta undefined"
        if suppress and adverse:
            note += "; smoke vs full baseline, flag suppressed"
        yield Row(label, old, new, None, adverse and not suppress, note=note)
        return
    delta = (new - old) / old
    would_flag = direction * delta < -threshold
    note = ""
    if suppress and would_flag:
        note = "smoke vs full baseline — flag suppressed"
    yield Row(label, old, new, delta, would_flag and not suppress, note=note)


def compare(baseline: dict, fresh: dict, threshold: float) -> Iterator[Row]:
    """Yield comparison :class:`Row`\\ s for every gated metric."""
    for section, metric, direction in METRICS:
        old_section = baseline.get(section, {})
        new_section = fresh.get(section, {})
        old = old_section.get(metric)
        new = new_section.get(metric)
        if old is None or new is None:
            continue
        label = f"{section}.{metric}"
        # A smoke artefact's single-repetition timings and a
        # full-repetition baseline are different measurement regimes:
        # report the deltas, suppress the flags.
        suppress = bool(old_section.get("smoke")) != bool(new_section.get("smoke"))
        old_is_dict = isinstance(old, dict)
        new_is_dict = isinstance(new, dict)
        if old_is_dict != new_is_dict:
            shapes = (
                ("per-key dict" if old_is_dict else type(old).__name__),
                ("per-key dict" if new_is_dict else type(new).__name__),
            )
            yield Row(
                label,
                None,
                None,
                None,
                False,
                note=f"schema changed: {shapes[0]} -> {shapes[1]}"
                " — re-baseline to compare",
            )
            continue
        if old_is_dict:
            for key in sorted(set(old) & set(new)):
                yield from _compare_scalar(
                    f"{label}.{key}",
                    old[key],
                    new[key],
                    direction,
                    threshold,
                    suppress=suppress,
                )
            for key in sorted(set(old) - set(new)):
                yield Row(
                    f"{label}.{key}",
                    None,
                    None,
                    None,
                    False,
                    note="schema changed: key dropped from fresh artefact",
                )
            for key in sorted(set(new) - set(old)):
                yield Row(
                    f"{label}.{key}",
                    None,
                    None,
                    None,
                    False,
                    note="schema changed: key new in fresh artefact",
                )
            continue
        yield from _compare_scalar(
            label, old, new, direction, threshold, suppress=suppress
        )


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{value:,.4g}"


def _print_rows(rows) -> None:
    width = max((len(row.label) for row in rows), default=0)
    for row in rows:
        marker = "ADVISORY regression" if row.flagged else "ok"
        delta = f"{row.delta:+7.1%}" if row.delta is not None else "      —"
        note = f"  [{row.note}]" if row.note else ""
        print(
            f"{row.label:<{width}}  {_format_value(row.old):>14} -> "
            f"{_format_value(row.new):>14}  ({delta})  {marker}{note}"
        )


def _load_json(path: Path) -> Optional[dict]:
    if not path.exists():
        print(f"compare_perf: {path} not found; nothing to compare")
        return None
    return json.loads(path.read_text())


# ----------------------------------------------------------------------
# history-backed modes (imported lazily so the classic two-artefact mode
# keeps working without PYTHONPATH=src)
# ----------------------------------------------------------------------
def _history_modules():
    try:
        import history
        from repro.stats.changepoint import detect_step, shift_zscore
        from repro.stats.confidence import ConfidenceTest, normal_quantile
    except ImportError as exc:  # pragma: no cover - environment guard
        raise SystemExit(
            f"compare_perf: history modes need PYTHONPATH=src ({exc})"
        )
    return history, detect_step, shift_zscore, ConfidenceTest, normal_quantile


def _against_history(args) -> int:
    """Score a fresh artefact against the longitudinal history."""
    history, detect_step, shift_zscore, ConfidenceTest, normal_quantile = (
        _history_modules()
    )
    fresh = _load_json(args.fresh_artifact)
    if fresh is None:
        return 0
    test = ConfidenceTest(confidence=args.confidence)
    quantile = normal_quantile(test.confidence)
    flat_fresh = history.flatten_metrics(fresh)

    rows = []
    changepoints = {}
    any_series = False
    entries_by_smoke = {}
    for label, value in sorted(flat_fresh.items()):
        direction = _metric_direction(label)
        if direction is None:
            continue
        section = label.split(".", 1)[0]
        smoke = bool(fresh.get(section, {}).get("smoke"))
        if smoke not in entries_by_smoke:
            entries_by_smoke[smoke] = history.load_history(
                args.history, smoke=smoke
            )
        entries = entries_by_smoke[smoke]
        series = history.metric_series(entries, label)
        if len(series) < MIN_HISTORY:
            rows.append(
                Row(
                    label,
                    None,
                    value,
                    None,
                    False,
                    note=f"insufficient {'smoke' if smoke else 'full'} history "
                    f"(n={len(series)} < {MIN_HISTORY}) — recording, not judging",
                )
            )
            continue
        any_series = True
        z = shift_zscore(series, value)
        mean = sum(series) / len(series)
        delta = (value - mean) / mean if mean else None
        flagged = direction * z < -quantile
        note = f"z={z:+.2f} vs {len(series)}-run history"
        rows.append(Row(label, mean, value, delta, flagged, note=note))
        step = detect_step(series + [value], test=test)
        if step is not None:
            changepoints[label] = step

    if not rows:
        print("compare_perf: no gated metrics found in fresh artefact")
        return 0
    print(
        f"compare_perf: fresh artefact vs history ({args.history}), "
        f"confidence {test.confidence:g} (|z| > {quantile:.2f} flags)"
    )
    _print_rows(rows)

    if changepoints:
        print("\nchangepoints detected over history + fresh run:")
        for label, step in sorted(changepoints.items()):
            rel = (
                f"{step.relative_shift:+.1%}"
                if math.isfinite(step.relative_shift)
                else "off zero baseline"
            )
            print(
                f"  {label}: {step.before_mean:,.4g} -> {step.after_mean:,.4g} "
                f"({rel}) at run {step.index}, z={step.zscore:+.2f}"
            )

    all_entries = history.load_history(args.history)
    for warning in history.machine_mismatch_warnings(
        all_entries, current=history.machine_fingerprint()
    ):
        print(f"\nWARN: {warning}")

    flagged_any = any(row.flagged for row in rows)
    if not any_series and not flagged_any:
        print(
            "\ncompare_perf: history too short for trend verdicts — "
            "entries will accumulate as runs append"
        )
    if flagged_any:
        print(
            "\ncompare_perf: at least one metric shifted past the "
            f"{test.confidence:g} confidence bar of its own history noise"
            + (" — strict mode fails" if args.strict else " — advisory only")
        )
        if args.strict:
            return 1
    return 0


def _branch_vs_main(args) -> int:
    """Compare the current branch's history entries against main's."""
    history, detect_step, shift_zscore, ConfidenceTest, normal_quantile = (
        _history_modules()
    )
    test = ConfidenceTest(confidence=args.confidence)
    quantile = normal_quantile(test.confidence)
    branch = args.branch or history.git_metadata().get("branch", "unknown")
    if branch == args.main_branch:
        print(
            f"compare_perf: current branch IS {args.main_branch!r}; "
            "nothing to compare (use --branch to name one)"
        )
        return 0
    main_entries = history.load_history(
        args.history, branch=args.main_branch, smoke=args.smoke
    )
    branch_entries = history.load_history(
        args.history, branch=branch, smoke=args.smoke
    )
    if not branch_entries:
        print(
            f"compare_perf: no history entries for branch {branch!r} "
            f"(smoke={args.smoke}); run the benches on this branch first"
        )
        return 0

    rows = []
    labels = sorted(
        set(history.metric_labels(main_entries))
        & set(history.metric_labels(branch_entries))
    )
    for label in labels:
        direction = _metric_direction(label)
        if direction is None:
            continue
        main_series = history.metric_series(main_entries, label)
        branch_series = history.metric_series(branch_entries, label)
        branch_mean = sum(branch_series) / len(branch_series)
        if len(main_series) < MIN_HISTORY:
            rows.append(
                Row(
                    label,
                    None,
                    branch_mean,
                    None,
                    False,
                    note=f"insufficient {args.main_branch} history "
                    f"(n={len(main_series)} < {MIN_HISTORY})",
                )
            )
            continue
        z = shift_zscore(main_series, branch_mean)
        main_mean = sum(main_series) / len(main_series)
        delta = (branch_mean - main_mean) / main_mean if main_mean else None
        flagged = direction * z < -quantile
        note = (
            f"z={z:+.2f}, {len(branch_series)} branch run(s) vs "
            f"{len(main_series)} on {args.main_branch}"
        )
        rows.append(Row(label, main_mean, branch_mean, delta, flagged, note=note))

    if not rows:
        print(
            "compare_perf: no overlapping gated metrics between "
            f"{branch!r} and {args.main_branch!r} history entries"
        )
        return 0
    print(
        f"compare_perf: branch {branch!r} vs {args.main_branch!r} "
        f"(confidence {test.confidence:g}, smoke={args.smoke})"
    )
    _print_rows(rows)
    for warning in history.machine_mismatch_warnings(
        main_entries + branch_entries
    ):
        print(f"\nWARN: {warning}")
    if any(row.flagged for row in rows):
        print(
            f"\ncompare_perf: branch regresses past the {test.confidence:g} "
            f"confidence bar of {args.main_branch}'s noise"
            + (" — strict mode fails" if args.strict else " — advisory only")
        )
        if args.strict:
            return 1
    return 0


def _two_artifacts(args) -> int:
    """The classic committed-baseline vs fresh-artefact comparison."""
    baseline = _load_json(args.baseline)
    fresh = _load_json(args.fresh) if baseline is not None else None
    if baseline is None or fresh is None:
        return 0
    fresh_smoke_sections = [
        s for s, _, _ in METRICS if fresh.get(s, {}).get("smoke")
    ]
    if fresh_smoke_sections:
        print(
            "compare_perf: fresh artefact contains smoke-run sections "
            f"({', '.join(sorted(set(fresh_smoke_sections)))}) — their "
            "deltas against a full-repetition baseline are noise "
            "estimates, not trajectory numbers; per-metric flags are "
            "suppressed for mismatched sections (use --against-history "
            "to judge smoke runs against smoke-tagged history)"
        )

    rows = list(compare(baseline, fresh, args.threshold))
    if not rows:
        print("compare_perf: no comparable metrics found")
        return 0
    _print_rows(rows)
    if any(row.flagged for row in rows):
        print(
            f"\ncompare_perf: at least one metric regressed past "
            f"±{args.threshold:.0%} — advisory only; investigate before "
            "trusting the committed baseline"
        )
        if args.strict:
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        help="committed BENCH_PERF.json (two-artefact mode)",
    )
    parser.add_argument(
        "fresh",
        type=Path,
        nargs="?",
        help="freshly produced artefact (two-artefact mode)",
    )
    parser.add_argument(
        "--against-history",
        type=Path,
        dest="fresh_artifact",
        metavar="FRESH",
        help="score FRESH against the longitudinal history instead of a "
        "single baseline artefact",
    )
    parser.add_argument(
        "--branch-vs-main",
        action="store_true",
        help="compare the current branch's history entries against main's",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        help="history JSONL (default: results/bench_history.jsonl)",
    )
    parser.add_argument(
        "--branch",
        default=None,
        help="branch name for --branch-vs-main (default: git HEAD's branch)",
    )
    parser.add_argument(
        "--main-branch",
        default="main",
        help="reference branch for --branch-vs-main (default: main)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="for --branch-vs-main: compare smoke-tagged entries instead "
        "of full runs",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.999,
        help="confidence level for the history-noise z test and the "
        "changepoint scan (default 0.999, the rule generator's setting)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="two-artefact advisory regression threshold as a fraction "
        "(default 0.05)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any metric regresses past the bar",
    )
    args = parser.parse_args(argv)

    if args.fresh_artifact is not None and args.branch_vs_main:
        parser.error("--against-history and --branch-vs-main are exclusive")
    if args.fresh_artifact is not None or args.branch_vs_main:
        if args.baseline is not None or args.fresh is not None:
            parser.error("history modes take no positional artefacts")
        if args.history is None:
            args.history = (
                Path(__file__).resolve().parent.parent
                / "results"
                / "bench_history.jsonl"
            )
        if args.fresh_artifact is not None:
            return _against_history(args)
        return _branch_vs_main(args)

    if args.baseline is None or args.fresh is None:
        parser.error(
            "two-artefact mode needs BASELINE and FRESH "
            "(or use --against-history / --branch-vs-main)"
        )
    return _two_artifacts(args)


if __name__ == "__main__":
    sys.exit(main())
