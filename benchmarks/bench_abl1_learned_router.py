"""ABL1 — learned escalation vs the simple confidence-threshold policies.

The paper evaluated richer designs, including an ML-based router, and found
the simple policies performed at least as well, so the main design keeps the
fixed-threshold ensembles.  This ablation reproduces that comparison: a
logistic error predictor (fit on half the measurements) drives escalation
and is compared on the other half against the best fixed-threshold
sequential ensemble at a matched error-degradation budget.
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import LogisticEscalationPolicy, SequentialPolicy, evaluate_policy

BUDGET = 0.05  # matched error-degradation budget


def _compare(measurements, fast):
    accurate = measurements.most_accurate_version()
    half = measurements.n_requests // 2
    train_idx = range(half)
    test_idx = range(half, measurements.n_requests)

    # Learned router: fit the error predictor, then calibrate its escalation
    # cut-off on the training split so it honours the same degradation budget
    # as the fixed-threshold policy (otherwise the comparison is unfair).
    best_learned = None
    for cut_off in (0.2, 0.3, 0.4, 0.5, 0.6, 0.7):
        policy = LogisticEscalationPolicy(
            fast, accurate, escalation_probability=cut_off
        ).fit(measurements, indices=train_idx)
        train_metrics = evaluate_policy(measurements, policy, indices=train_idx)
        if train_metrics.error_degradation > BUDGET:
            continue
        candidate = evaluate_policy(measurements, policy, indices=test_idx)
        if best_learned is None or (
            candidate.mean_response_time_s < best_learned.mean_response_time_s
        ):
            best_learned = candidate

    # Fixed threshold: fastest setting whose training degradation fits the budget.
    best_fixed = None
    for threshold in (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9):
        policy = SequentialPolicy(fast, accurate, threshold)
        train_metrics = evaluate_policy(measurements, policy, indices=train_idx)
        if train_metrics.error_degradation > BUDGET:
            continue
        candidate = evaluate_policy(measurements, policy, indices=test_idx)
        if best_fixed is None or (
            candidate.mean_response_time_s < best_fixed.mean_response_time_s
        ):
            best_fixed = candidate
    return {"learned": best_learned, "fixed": best_fixed}


def test_abl1_learned_router(benchmark, ic_cpu_measurements, asr_measurements):
    services = {
        "ic_cpu": (ic_cpu_measurements, "ic_cpu_squeezenet"),
        "asr": (asr_measurements, "asr_v4"),
    }
    result = benchmark(
        lambda: {name: _compare(ms, fast) for name, (ms, fast) in services.items()}
    )

    rows = []
    payload = {}
    for name, comparison in result.items():
        for kind, metrics in comparison.items():
            rows.append(
                [
                    name,
                    kind,
                    metrics.policy_name,
                    metrics.error_degradation,
                    metrics.response_time_reduction,
                ]
            )
            payload.setdefault(name, {})[kind] = {
                "policy": metrics.policy_name,
                "error_degradation": metrics.error_degradation,
                "response_time_reduction": metrics.response_time_reduction,
            }
        # Both approaches must deliver savings; the paper's finding is that
        # the simple fixed-threshold policy is competitive with the learned
        # router (within a few points of saving).
        fixed = comparison["fixed"]
        learned = comparison["learned"]
        assert fixed is not None and learned is not None
        assert fixed.response_time_reduction > 0.0
        assert fixed.response_time_reduction >= learned.response_time_reduction - 0.15

    print()
    print(
        format_table(
            ["service", "router", "policy", "held-out degradation", "time saved"],
            rows,
            title="ABL1 learned escalation vs fixed-threshold sequential ensembles",
            float_format=".3f",
        )
    )
    save_artifact("abl1_learned_router", payload)
