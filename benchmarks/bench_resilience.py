"""RESIL — the chaos matrix: every fault type x every controller.

The CTRL benchmark showed what the control plane buys on sharpened
versions of the PR 3 degraded modes; this benchmark runs the *chaos
vocabulary* — gray failure, cascade, retry storm, cold-start wave,
thundering herd — against the same three controllers:

* **static** — the open loop (``control=None``): the offline-fit
  ``seq(fast, slow, 0.6)`` policy serves everything, whatever happens.
* **shed** — SLO monitors + probabilistic load shedding under breach.
* **adaptive** — tier-downgrade admission + gray-failure detection:
  under pressure, arrivals are answered by the fast tier instead of
  queueing on (or escalating into) degraded capacity.

Each cell of the matrix is scored against the *same controller on the
same scenario with the fault schedule removed* — chaos relative to that
controller's own healthy behaviour, so a controller cannot look
resilient by being uniformly slow.  The resilience scorecard per cell:

* ``goodput_retention`` — chaotic goodput / healthy goodput (1.0 =
  the fault cost nothing; higher is better).
* ``p95_inflation`` — chaotic p95 / healthy p95 (lower is better).
* ``time_to_recover_s`` — how long past the end of fault activity the
  system kept serving responses slower than 1.5x the healthy p95
  (0 = recovered instantly; lower is better).
* ``retry_amplification`` — mean attempts per request (1.0 = no
  retries; lower is better).

Pinned claims (the PR's acceptance bar):

* every chaos scenario *bites* under the static controller (retention
  drops or the tail inflates measurably);
* the adaptive controller strictly beats static goodput retention on at
  least three of the five chaos scenarios, and never loses more than a
  few percent on any;
* chaos runs are seed-deterministic (same spec -> same digest).

Headline metrics land in ``BENCH_PERF.json`` (section ``resilience``)
and ride ``compare_perf.py``: the numbers are deterministic simulation
outputs, so any delta is a behaviour change, not timer noise.

Smoke mode (for the fast CI tier): ``REPRO_BENCH_SMOKE=1`` (or running
this file directly with ``--smoke``) runs the static-vs-adaptive slice
of the matrix — unshrunk, the workload is cheap and deterministic — and
routes the artefact to ``results/`` instead of the committed baseline.
The full matrix (all three controllers plus the acceptance assertions)
carries the ``slow`` marker and runs in the full tier.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q -s
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke
"""

import os
from dataclasses import replace

import pytest

from bench_perf import _merge_output
from conftest import save_artifact

from repro.analysis import format_table
from repro.service.control import (
    AdmissionSpec,
    ControlSpec,
    GrayDetectionSpec,
    SLOSpec,
    SLOState,
)
from repro.service.simulation import (
    CascadePolicy,
    NodeCrash,
    PoissonArrivals,
    RetryPolicy,
    RetryStorm,
    ThunderingHerd,
    chaos_scenarios,
    run_scenario,
    scenario_measurements,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Per-scenario p95 SLO ceilings (seconds), on the toy measurement
#: geometry (fast ~50 ms, slow ~400 ms): loose enough that a healthy run
#: never breaches, tight enough that every chaos scenario does.
P95_TARGETS = {
    "gray-failure": 0.9,
    "cascade": 1.2,
    "retry-storm": 0.9,
    "cold-start": 1.2,
    "thundering-herd": 0.9,
}

#: Virtual time the injected fault activity is over (windows closed,
#: cascade windows expired, warmups finished) — the reference point for
#: time-to-recover.
FAULT_OVER_S = {
    "gray-failure": 30.0,
    "cascade": 37.0,  # crash recovers at 25; cascade window expires by 37
    "retry-storm": 25.0,
    "cold-start": 24.0,  # spike ends at 18; warmup_s=6
    "thundering-herd": 16.25,  # release at 16, spread 0.25
}


def _slos(target):
    return (
        SLOSpec(
            name="latency",
            max_p95_latency_s=target,
            breach_after=1,
            clear_after=6,
        ),
        SLOSpec(
            name="availability",
            min_availability=0.9,
            breach_after=1,
            clear_after=6,
        ),
    )


def _shed_control(target):
    return ControlSpec(
        window_s=5.0,
        tick_interval_s=0.25,
        slos=_slos(target),
        admission=AdmissionSpec(policy="probabilistic", shed_probability=0.85),
    )


def _adaptive_control(target):
    return ControlSpec(
        window_s=5.0,
        tick_interval_s=0.25,
        slos=_slos(target),
        admission=AdmissionSpec(policy="degrade"),
        gray_detection=GrayDetectionSpec(
            # 2-node pools: the median is the pool mean, so divergence
            # ratios cap just below 2 — 1.4 separates an injected gray
            # node from healthy noise.
            ratio_threshold=1.4,
            min_samples=4,
            detect_after=2,
            clear_after=4,
            state_on_detect=SLOState.BREACH,
        ),
    )


def _bench_scenarios():
    """The chaos vocabulary, sharpened past the golden-trace scales.

    The golden chaos scenarios are sized to pin behaviour cheaply; the
    bench variants raise offered load and fault severity until the open
    loop visibly suffers — that is the regime where controller
    differences are measurable rather than noise.
    """
    base = chaos_scenarios()
    # The matrix is deterministic and cheap (~3 s), so smoke mode runs
    # it unshrunk: identical workloads mean the advisory comparison sees
    # behaviour drift, not size mismatch.
    n = 300
    gray = base["gray-failure"]
    gray = replace(
        gray,
        n_requests=n,
        arrivals=PoissonArrivals(6.0),
        # Deeper slowdown, harsher confidence loss, longer window: the
        # gray node backs up its pool and drives spurious escalations.
        faults=(
            replace(
                gray.faults[0],
                speed_factor=0.2,
                confidence_factor=0.3,
                until_s=30.0,
            ),
        ),
    )
    cascade = replace(
        base["cascade"],
        n_requests=n,
        arrivals=PoissonArrivals(6.0),
        faults=(
            NodeCrash(at_s=6.0, version="slow", node_index=0, recover_at_s=25.0),
            CascadePolicy(
                version="slow",
                window_s=12.0,
                base_probability=0.5,
                load_factor=0.2,
                max_probability=0.95,
            ),
        ),
        retry=RetryPolicy(max_attempts=2, backoff_s=0.05),
    )
    storm = replace(
        base["retry-storm"],
        n_requests=n,
        arrivals=PoissonArrivals(6.0),
        # The storm hits the accurate pool: every escalation gambles on a
        # bad bucket, so the open loop burns its retry budgets there.
        faults=(
            RetryStorm(
                start_s=5.0,
                end_s=25.0,
                failure_probability=0.9,
                bucket_s=0.5,
                bad_fraction=0.7,
                versions=("slow",),
            ),
        ),
    )
    cold = replace(base["cold-start"], n_requests=n)
    herd = replace(
        base["thundering-herd"],
        n_requests=n,
        arrivals=PoissonArrivals(6.0),
        faults=(ThunderingHerd(start_s=8.0, end_s=16.0, spread_s=0.25),),
    )
    return {
        "gray-failure": gray,
        "cascade": cascade,
        "retry-storm": storm,
        "cold-start": cold,
        "thundering-herd": herd,
    }


def _controllers(name):
    target = P95_TARGETS[name]
    return {
        "static": None,
        "shed": _shed_control(target),
        "adaptive": _adaptive_control(target),
    }


def _time_to_recover(report, healthy_p95, fault_over_s):
    """Seconds past the end of fault activity the tail stayed degraded."""
    threshold = healthy_p95 * 1.5
    last_bad = max(
        (
            r.finished_s
            for r in report.records
            if not r.failed and not r.shed and r.response_time_s > threshold
        ),
        default=float("-inf"),
    )
    return max(0.0, last_bad - fault_over_s)


def _scorecard(name, chaotic, healthy):
    healthy_p95 = healthy.p95_latency_s
    return {
        "goodput_retention": chaotic.goodput_rps / healthy.goodput_rps,
        "p95_inflation": chaotic.p95_latency_s / healthy_p95,
        "time_to_recover_s": _time_to_recover(
            chaotic, healthy_p95, FAULT_OVER_S[name]
        ),
        "retry_amplification": chaotic.retry_amplification,
    }


def _run_matrix(scenarios, controller_names):
    """Run chaos + healthy twins per (scenario, controller); score each."""
    measurements = scenario_measurements()
    scores, reports = {}, {}
    for name, spec in scenarios.items():
        controllers = _controllers(name)
        for controller in controller_names:
            control = controllers[controller]
            chaotic = run_scenario(
                replace(spec, control=control),
                measurements,
                check_invariants=True,
            )
            healthy = run_scenario(
                replace(spec, name=f"{name}-healthy", faults=(), control=control),
                measurements,
                check_invariants=True,
            )
            scores[(name, controller)] = _scorecard(name, chaotic, healthy)
            reports[(name, controller)] = (chaotic, healthy)
    return scores, reports


def _emit(scores, reports, *, artifact_name):
    rows = [
        [
            name,
            controller,
            card["goodput_retention"],
            card["p95_inflation"],
            card["time_to_recover_s"],
            card["retry_amplification"],
            reports[(name, controller)][0].availability,
            reports[(name, controller)][0].n_shed,
            reports[(name, controller)][0].n_retry_denied,
        ]
        for (name, controller), card in scores.items()
    ]
    print()
    print(
        format_table(
            [
                "scenario",
                "controller",
                "goodput ret.",
                "p95 infl.",
                "recover (s)",
                "retry amp.",
                "availability",
                "shed",
                "denied",
            ],
            rows,
            title="RESIL chaos matrix: resilience scorecard per controller",
            float_format=".3f",
        )
    )
    artifact = {
        f"{name}/{controller}": {
            **{k: round(v, 6) for k, v in card.items()},
            "digest": reports[(name, controller)][0].digest(),
        }
        for (name, controller), card in scores.items()
    }
    save_artifact(artifact_name, {"smoke": SMOKE, "results": artifact})
    _merge_output(
        {
            "resilience": {
                metric: {
                    f"{name}-{controller}": round(card[metric], 4)
                    for (name, controller), card in scores.items()
                }
                for metric in (
                    "goodput_retention",
                    "p95_inflation",
                    "time_to_recover_s",
                    "retry_amplification",
                )
            }
            | {"smoke": SMOKE}
        }
    )


@pytest.mark.skipif(
    not SMOKE, reason="smoke slice of the chaos matrix; the full tier runs it all"
)
def test_resilience_smoke():
    """Fast-tier slice: every fault type, static vs adaptive, full loads."""
    scenarios = _bench_scenarios()
    scores, reports = _run_matrix(scenarios, ("static", "adaptive"))
    _emit(scores, reports, artifact_name="bench_resilience")
    # The smoke slice still pins the load-bearing wiring: chaos runs are
    # deterministic, and every scenario's chaos actually changes behaviour.
    for name, spec in scenarios.items():
        chaotic, healthy = reports[(name, "static")]
        assert chaotic.digest() != healthy.digest(), name


@pytest.mark.slow
def test_resilience_matrix():
    measurements = scenario_measurements()
    scenarios = _bench_scenarios()
    scores, reports = _run_matrix(scenarios, ("static", "shed", "adaptive"))
    _emit(scores, reports, artifact_name="bench_resilience")

    # Determinism: each chaos cell reproduces its own digest.
    for name, spec in scenarios.items():
        control = _controllers(name)["adaptive"]
        again = run_scenario(
            replace(spec, control=control), measurements, check_invariants=True
        )
        assert again.digest() == reports[(name, "adaptive")][0].digest(), name

    # Every chaos scenario must bite under the open loop: goodput drops
    # or the tail inflates. A scenario that costs nothing pins nothing.
    for name in scenarios:
        card = scores[(name, "static")]
        assert (
            card["goodput_retention"] < 0.97 or card["p95_inflation"] > 1.10
        ), (name, card)

    # The adaptive controller's claim: strictly better goodput retention
    # than static on at least three of the five chaos scenarios...
    wins = [
        name
        for name in scenarios
        if scores[(name, "adaptive")]["goodput_retention"]
        > scores[(name, "static")]["goodput_retention"]
    ]
    assert len(wins) >= 3, {
        name: (
            scores[(name, "static")]["goodput_retention"],
            scores[(name, "adaptive")]["goodput_retention"],
        )
        for name in scenarios
    }
    # ...and never materially worse on the rest.
    for name in scenarios:
        assert (
            scores[(name, "adaptive")]["goodput_retention"]
            >= scores[(name, "static")]["goodput_retention"] * 0.95
        ), name

    # Budgeted retries keep amplification bounded under the storm.
    assert scores[("retry-storm", "static")]["retry_amplification"] <= 2.0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        # This module (and bench_perf) were imported before the flag was
        # set and froze SMOKE=False; purge them so pytest's fresh import
        # sees smoke mode and routes artefacts to results/ only.
        sys.modules.pop("bench_perf", None)
    raise SystemExit(
        pytest.main(
            [__file__, "-q", "-s"]
            + (["-m", "not slow"] if "--smoke" in sys.argv else [])
        )
    )
