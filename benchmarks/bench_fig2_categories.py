"""FIG2EF — request category breakdown (paper Fig. 2e-f).

Regenerates the unchanged / improves / degrades / varies shares for the ASR
and image-classification services.  The paper reports the unchanged
category dominating (>74 % ASR, >65 % IC) with a substantial improves
share (>15 %); the benchmark asserts the same qualitative structure.
"""

from conftest import save_artifact

from repro.analysis import CATEGORY_NAMES, categorize_requests, format_table


def test_fig2_categories(benchmark, asr_measurements, ic_cpu_measurements):
    services = {"asr": asr_measurements, "ic_cpu": ic_cpu_measurements}
    result = benchmark(
        lambda: {
            name: categorize_requests(ms, tolerance=1e-6).shares()
            for name, ms in services.items()
        }
    )

    rows = [
        [name] + [shares[category] for category in CATEGORY_NAMES]
        for name, shares in result.items()
    ]
    print()
    print(
        format_table(
            ["service", *CATEGORY_NAMES],
            rows,
            title="FIG2e-f request category shares",
        )
    )

    for name, shares in result.items():
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        # unchanged is the largest category, as in the paper
        assert shares["unchanged"] == max(shares.values())
        # a meaningful fraction of requests improves with better versions
        assert shares["improves"] > 0.05

    save_artifact("fig2_categories", result)
