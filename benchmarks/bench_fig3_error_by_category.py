"""FIG3 — error per request category across versions (paper Fig. 3a-b).

Regenerates, for each service, the mean error of the improves / degrades /
varies categories (plus the "all" group) under every service version.  The
paper's takeaway — overall error improves with more accurate versions, and
the improves category drives it — is asserted explicitly.
"""

from conftest import save_artifact

from repro.analysis import error_by_category, format_table


def test_fig3_error_by_category(benchmark, asr_measurements, ic_cpu_measurements):
    services = {"asr": asr_measurements, "ic_cpu": ic_cpu_measurements}
    result = benchmark(
        lambda: {name: error_by_category(ms) for name, ms in services.items()}
    )

    for name, groups in result.items():
        measurements = services[name]
        versions = list(measurements.versions)
        rows = [
            [group] + [values[v] for v in versions] for group, values in groups.items()
        ]
        print()
        print(
            format_table(
                ["category", *versions],
                rows,
                title=f"FIG3 [{name}] error per category across versions",
                float_format=".3f",
            )
        )
        # overall error must improve from the fastest to the most accurate
        # version (the paper's "all" bars)
        all_errors = groups["all"]
        assert all_errors[measurements.most_accurate_version()] < all_errors[
            measurements.fastest_version()
        ]
        # the improves category improves monotonically in the version order
        if "improves" in groups:
            improves = [groups["improves"][v] for v in versions]
            assert improves[-1] <= improves[0]

    save_artifact("fig3_error_by_category", result)
