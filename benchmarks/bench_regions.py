"""REGIONS — multi-region sharding: what failover buys, what workers buy.

Two questions, answered with deterministic simulation outputs plus one
wall-clock measurement:

1. **Locality vs failover goodput.**  The ``regional-outage`` canonical
   scenario runs twice: once as shipped (the dead region's traffic
   spills across the link) and once with its failover link severed for
   the whole run (every spill is denied and takes its chances on the
   degraded home pools).  In this closed workload both twins eventually
   complete everything — the outage's cost is *tail containment*:
   severed traffic queues behind the dead pool and the p95 user latency
   inflates several-fold, while failover traffic pays only the link
   round trip.  The matrix records goodput/availability/tail per cell
   and pins that containment ratio — a behavioural claim over identical
   workloads, so any drift is a change, not noise.  The ``tri-steady``
   locality baseline rides along as the control.

2. **Parallel shard speedup.**  A four-region trace (25k requests per
   region, 100k total) runs serially and with ``parallel=4`` worker
   processes; both must produce bit-identical digests, and the wall
   ratio is the recorded speedup.  Every region carries a ``NodeCrash``
   schedule, which keeps each shard on the legacy event loop — the
   regime where shard-level parallelism matters (the columnar engine
   finishes 100k requests too fast for process fan-out to pay for
   itself).  The >= 2x acceptance floor is asserted only where it is
   physically possible (>= 4 usable cores); the artefact always records
   ``cpu_count`` next to the ratio so a 1-vCPU container's numbers are
   interpretable.

Headline metrics land in ``BENCH_PERF.json`` (section ``regions``) and
the longitudinal history via ``_merge_output``.

Smoke mode (fast CI tier): ``REPRO_BENCH_SMOKE=1`` (or ``--smoke``)
shrinks the speedup trace to 600 requests per region, skips the floor,
and routes artefacts to ``results/`` only.  The full trace carries the
``slow`` marker.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_regions.py -q -s
    PYTHONPATH=src python benchmarks/bench_regions.py --smoke
"""

import os
import time
from dataclasses import replace

import pytest

from bench_perf import _merge_output
from conftest import save_artifact

from repro.analysis import format_table
from repro.service.regions import (
    MultiRegionSpec,
    RegionSpec,
    region_scenarios,
    run_multi_region,
)
from repro.service.simulation import (
    NodeCrash,
    PoissonArrivals,
    RegionPartition,
    ScenarioSpec,
    scenario_measurements,
)
from repro.service.simulation.scenarios import _tiered_configuration

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WORKERS = 4
#: Per-region request count for the speedup trace (x 4 regions).
TRACE_N = 600 if SMOKE else 25_000
#: Acceptance floor for the parallel speedup, asserted only when the
#: machine can physically deliver it (shards are CPU-bound; on fewer
#: cores than workers the fan-out cannot beat the serial loop).
SPEEDUP_FLOOR = 2.0
CPU_COUNT = os.cpu_count() or 1


def _speedup_spec():
    """Four symmetric regions, each pinned to the legacy engine.

    Each region keeps a two-node fast pool with one mid-run crash and
    recovery: the fault schedule forces the legacy event loop (the
    columnar engine declines faulted runs) without ever zeroing a pool,
    so no failover traffic skews the per-shard workload balance.
    """
    regions = []
    for i, name in enumerate(("us-east", "eu-west", "ap-south", "sa-east")):
        scenario = ScenarioSpec(
            name=f"speedup-{name}",
            arrivals=PoissonArrivals(50.0),
            n_requests=TRACE_N,
            pools={"fast": 2, "slow": 2},
            configuration=_tiered_configuration(),
            faults=(
                NodeCrash(
                    at_s=5.0 + i,
                    version="fast",
                    node_index=0,
                    recover_at_s=15.0 + i,
                ),
            ),
        )
        regions.append(RegionSpec(name=name, scenario=scenario))
    return MultiRegionSpec(name="speedup-trace", regions=tuple(regions), seed=97)


def _severed(spec):
    """The same spec with every failover link down for the whole run."""
    partitions = tuple(
        RegionPartition(region=name, start_s=0.0, end_s=float("inf"))
        for name in spec.region_names
    )
    return replace(spec, name=f"{spec.name}-severed", partitions=partitions)


def _goodput_row(name, report):
    summary = report.summary()
    return {
        "goodput_rps": summary["goodput_rps"],
        "availability": summary["availability"],
        "p95_user_latency_s": summary["p95_user_latency_s"],
        "n_failovers": summary["n_failovers"],
        "n_failover_denied": summary["n_failover_denied"],
        "n_engine_fallbacks": summary["n_engine_fallbacks"],
        "digest": report.digest(),
    }


def _run_goodput_matrix(measurements):
    scenarios = region_scenarios()
    outage = scenarios["regional-outage"]
    cells = {
        "tri-steady": run_multi_region(scenarios["tri-steady"], measurements),
        "outage-failover": run_multi_region(outage, measurements),
        "outage-severed": run_multi_region(_severed(outage), measurements),
        "partitioned-brownout": run_multi_region(
            scenarios["partitioned-brownout"], measurements
        ),
    }
    return {name: _goodput_row(name, report) for name, report in cells.items()}, cells


def _run_speedup(measurements):
    spec = _speedup_spec()
    start = time.perf_counter()
    serial = run_multi_region(spec, measurements)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_multi_region(spec, measurements, parallel=WORKERS)
    parallel_s = time.perf_counter() - start
    assert serial.digest() == parallel.digest(), (
        "parallel execution changed behaviour"
    )
    n = serial.n_requests
    return {
        "n_requests": n,
        "workers": WORKERS,
        "cpu_count": CPU_COUNT,
        "serial_wall_s": round(serial_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 4),
        "serial_sim_rps": round(n / serial_s, 1),
        "parallel_sim_rps": round(n / parallel_s, 1),
        "digest": serial.digest(),
    }


def _emit(goodput, reports, speedup):
    print()
    print(
        format_table(
            ["scenario", "goodput", "avail.", "p95 user", "failovers",
             "denied", "fallbacks"],
            [
                [
                    name,
                    row["goodput_rps"],
                    row["availability"],
                    row["p95_user_latency_s"],
                    row["n_failovers"],
                    row["n_failover_denied"],
                    row["n_engine_fallbacks"],
                ]
                for name, row in goodput.items()
            ],
            title="REGIONS goodput matrix: locality vs failover",
            float_format=".3f",
        )
    )
    fallbacks = {
        name: report.engine_fallbacks()
        for name, report in reports.items()
        if report.engine_fallbacks()
    }
    if fallbacks:
        print(f"engine fallbacks by region: {fallbacks}")
    print(
        f"parallel shard speedup: {speedup['speedup']:.2f}x at "
        f"{speedup['workers']} workers on {speedup['n_requests']} requests "
        f"({speedup['serial_wall_s']:.2f}s -> {speedup['parallel_wall_s']:.2f}s, "
        f"{speedup['cpu_count']} cores)"
    )
    artifact = {
        "smoke": SMOKE,
        "goodput": {
            name: {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in row.items()
            }
            for name, row in goodput.items()
        },
        "parallel": speedup,
    }
    save_artifact("bench_regions", artifact)
    _merge_output(
        {
            "regions": {
                "goodput_rps": {
                    name: round(row["goodput_rps"], 4)
                    for name, row in goodput.items()
                },
                "availability": {
                    name: round(row["availability"], 4)
                    for name, row in goodput.items()
                },
                "failover_p95_containment": round(
                    goodput["outage-severed"]["p95_user_latency_s"]
                    / goodput["outage-failover"]["p95_user_latency_s"],
                    4,
                ),
                "parallel": speedup,
                "smoke": SMOKE,
            }
        }
    )


def _assert_failover_pays(goodput):
    """Failover must beat the severed twin where the outage bites: the tail."""
    with_failover = goodput["outage-failover"]
    severed = goodput["outage-severed"]
    assert with_failover["n_failovers"] > 0
    assert severed["n_failovers"] == 0
    assert severed["n_failover_denied"] > 0
    assert with_failover["availability"] >= severed["availability"]
    assert with_failover["goodput_rps"] >= severed["goodput_rps"]
    # Identical workloads: severed traffic queues behind the dead pool,
    # failover traffic pays a 0.16 s round trip instead.  2x is a wide
    # margin under the canonical outage (measured ~8x).
    assert (
        with_failover["p95_user_latency_s"] * 2.0
        < severed["p95_user_latency_s"]
    )


@pytest.mark.skipif(
    not SMOKE, reason="smoke slice of the regions bench; the full tier runs it all"
)
def test_regions_smoke():
    """Fast-tier slice: full goodput matrix, shrunk speedup trace."""
    measurements = scenario_measurements()
    goodput, reports = _run_goodput_matrix(measurements)
    speedup = _run_speedup(measurements)
    _emit(goodput, reports, speedup)
    _assert_failover_pays(goodput)
    # The shipped outage scenario must actually leave the columnar
    # engine somewhere, or the fallback accounting pins nothing.
    assert goodput["outage-failover"]["n_engine_fallbacks"] >= 1


@pytest.mark.slow
def test_regions_full():
    measurements = scenario_measurements()
    goodput, reports = _run_goodput_matrix(measurements)
    speedup = _run_speedup(measurements)
    _emit(goodput, reports, speedup)
    _assert_failover_pays(goodput)
    assert speedup["n_requests"] >= 100_000
    if CPU_COUNT >= WORKERS:
        assert speedup["speedup"] >= SPEEDUP_FLOOR, speedup
    else:
        print(
            f"speedup floor skipped: {CPU_COUNT} cores cannot feed "
            f"{WORKERS} workers"
        )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        # bench_perf was imported before the flag was set and froze
        # SMOKE=False; purge it so pytest's fresh import sees smoke mode.
        sys.modules.pop("bench_perf", None)
    raise SystemExit(
        pytest.main(
            [__file__, "-q", "-s"]
            + (["-m", "not slow"] if "--smoke" in sys.argv else [])
        )
    )
