"""ABL2 — bootstrap confidence level vs savings and guarantee safety.

DESIGN.md calls out the rule generator's confidence level (the paper fixes
it at 99.9 %) as a key design choice: lower confidence lets the generator
pick more aggressive configurations (larger savings) at a higher risk of
held-out violations.  This ablation sweeps the confidence level and audits
each setting on held-out folds.
"""

from conftest import save_artifact

from repro.analysis import format_table
from repro.core import audit_guarantees, enumerate_configurations

CONFIDENCE_LEVELS = (0.90, 0.99, 0.999)
TOLERANCES = [0.02, 0.05, 0.10]


def test_abl2_confidence(benchmark, ic_cpu_measurements):
    configurations = enumerate_configurations(
        ic_cpu_measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["ic_cpu_squeezenet"],
    )

    def run():
        audits = {}
        for confidence in CONFIDENCE_LEVELS:
            audits[confidence] = audit_guarantees(
                ic_cpu_measurements,
                tolerances=TOLERANCES,
                objective="response-time",
                folds=3,
                confidence=confidence,
                seed=29,
                configurations=configurations,
                generator_kwargs={"min_trials": 6, "max_trials": 40},
            )
        return audits

    audits = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    payload = {}
    for confidence, audit in audits.items():
        mean_saving = sum(
            row.mean_response_time_reduction for row in audit.rows
        ) / len(audit.rows)
        worst = max(row.worst_degradation - row.tolerance for row in audit.rows)
        rows.append(
            [f"{confidence:.1%}", mean_saving, audit.total_violations, worst]
        )
        payload[str(confidence)] = {
            "mean_time_saved": mean_saving,
            "violations": audit.total_violations,
        }

    print()
    print(
        format_table(
            ["confidence", "mean time saved", "violations", "worst slack over tolerance"],
            rows,
            title="ABL2 rule-generator confidence level vs savings and safety",
            float_format=".4f",
        )
    )

    # the paper's 99.9 % setting must not violate its guarantees
    assert audits[0.999].total_violations == 0
    save_artifact("abl2_confidence", payload)
