"""FIG2AB — per-request latency behaviour across versions (paper Fig. 2a-d).

Regenerates the per-version latency distributions (percentiles) that show
how the latency cost of more accurate versions is paid by *every* request.
"""

from conftest import save_artifact

from repro.analysis import format_table, latency_percentiles


def test_fig2_request_behaviour(benchmark, asr_measurements, ic_cpu_measurements):
    services = {"asr": asr_measurements, "ic_cpu": ic_cpu_measurements}
    result = benchmark(
        lambda: {name: latency_percentiles(ms) for name, ms in services.items()}
    )

    for name, table in result.items():
        rows = [
            [version, stats["p50"], stats["p90"], stats["p99"]]
            for version, stats in table.items()
        ]
        print()
        print(
            format_table(
                ["version", "p50 (s)", "p90 (s)", "p99 (s)"],
                rows,
                title=f"FIG2a-d [{name}] per-request latency distribution",
            )
        )
        # distributions must be ordered: p50 of the slowest version exceeds
        # the p50 of the fastest version
        p50s = [stats["p50"] for stats in table.values()]
        assert max(p50s) > min(p50s)

    save_artifact("fig2_request_behaviour", result)
