"""Shared fixtures for the test suite.

The expensive artefacts (the ASR measurement table, which needs real
beam-search decodes, and the calibrated IC measurement table) are built once
per session and shared; individual tests treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_imagenet_surrogate, make_voxforge_surrogate
from repro.service import measure_asr_service, measure_ic_service


def pytest_addoption(parser):
    """Register the golden-trace regeneration flag.

    ``--update-golden`` rewrites the scenario digests under
    ``tests/service/golden/`` instead of comparing against them; see the
    README in that directory for when regeneration is legitimate.
    """
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden scenario trace digests instead of "
        "asserting against them",
    )


@pytest.fixture()
def update_golden(request):
    """Whether this run should rewrite golden files."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def speech_corpus():
    """A small synthetic speech corpus (shared, read-only)."""
    return make_voxforge_surrogate(n_utterances=24, seed=11, n_speakers=8)


@pytest.fixture(scope="session")
def image_dataset():
    """A small synthetic image dataset (shared, read-only)."""
    return make_imagenet_surrogate(n_images=240, n_classes=5, image_size=8, seed=11)


@pytest.fixture(scope="session")
def asr_measurements(speech_corpus):
    """ASR measurements of the small corpus under all seven versions."""
    return measure_asr_service(corpus=speech_corpus)


@pytest.fixture(scope="session")
def ic_measurements():
    """Calibrated CPU image-classification measurements (2 000 requests)."""
    return measure_ic_service(2000, device="cpu", seed=17)


@pytest.fixture(scope="session")
def ic_gpu_measurements():
    """Calibrated GPU image-classification measurements (1 000 requests)."""
    return measure_ic_service(1000, device="gpu", seed=23)


@pytest.fixture()
def rng():
    """A fresh seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(
    params=[
        "legacy",
        pytest.param(
            "columnar",
            marks=[pytest.mark.slow, pytest.mark.sim_engine_matrix],
        ),
    ]
)
def sim_engine(request, monkeypatch):
    """Which simulator execution engine the test runs under.

    The simulator suites (``tests/service``, ``tests/gateway``,
    ``tests/control``) activate this fixture autouse via their local
    conftests, so every test there runs once per engine — the columnar
    leg is the differential half of the dual-engine harness (see
    ``docs/PERFORMANCE.md``).  The columnar parameter carries the
    ``slow`` marker: the fast CI tier (``-m "not slow"``) pins the
    legacy oracle to keep push latency flat, the full tier runs both.
    Tests that drive both engines explicitly (the differential suite)
    shadow this fixture to opt out of the doubling.
    """
    monkeypatch.setenv("REPRO_SIM_ENGINE", request.param)
    return request.param
