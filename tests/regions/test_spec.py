"""Validation and topology semantics of the multi-region specs."""

import numpy as np
import pytest

from repro.service.regions import (
    MultiRegionSpec,
    RegionSpec,
    derive_capacity_rps,
)
from repro.service.simulation import (
    PoissonArrivals,
    RegionPartition,
    ScenarioSpec,
    ThunderingHerd,
    affected_versions,
)
from repro.service.simulation.scenarios import _tiered_configuration


def _scenario(name="r", **overrides):
    defaults = dict(
        name=name,
        arrivals=PoissonArrivals(3.0),
        n_requests=20,
        pools={"fast": 1, "slow": 1},
        configuration=_tiered_configuration(),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _region(name="us", **overrides):
    defaults = dict(name=name, scenario=_scenario(f"s-{name}"))
    defaults.update(overrides)
    return RegionSpec(**defaults)


class TestRegionSpec:
    def test_needs_name(self):
        with pytest.raises(ValueError, match="needs a name"):
            RegionSpec(name="", scenario=_scenario())

    def test_rejects_thundering_herd(self):
        herd = ThunderingHerd(start_s=1.0, end_s=2.0)
        with pytest.raises(ValueError, match="ThunderingHerd"):
            _region(scenario=_scenario(faults=(herd,)))

    def test_rejects_region_partition_in_scenario_faults(self):
        partition = RegionPartition(region="us", start_s=1.0, end_s=2.0)
        with pytest.raises(ValueError, match="MultiRegionSpec.partitions"):
            _region(scenario=_scenario(faults=(partition,)))

    def test_rejects_bad_capacity_and_windows(self):
        with pytest.raises(ValueError, match="capacity_rps"):
            _region(capacity_rps=0.0)
        with pytest.raises(ValueError, match="saturation_window_s"):
            _region(saturation_window_s=-1.0)
        with pytest.raises(ValueError, match="slo_window_s"):
            _region(slo_tick_s=0.0)


class TestRegionPartition:
    def test_validation(self):
        with pytest.raises(ValueError, match="region name"):
            RegionPartition(region="", start_s=0.0, end_s=1.0)
        with pytest.raises(ValueError, match="itself"):
            RegionPartition(region="us", peer="us", start_s=0.0, end_s=1.0)
        with pytest.raises(ValueError, match="end_s"):
            RegionPartition(region="us", start_s=2.0, end_s=2.0)

    def test_severs_directed_pair_and_window(self):
        p = RegionPartition(
            region="us", peer="eu", start_s=5.0, end_s=10.0,
            bidirectional=False,
        )
        assert p.severs("us", "eu", 5.0)
        assert p.severs("us", "eu", 9.999)
        assert not p.severs("us", "eu", 10.0)
        assert not p.severs("us", "eu", 4.999)
        assert not p.severs("eu", "us", 7.0)
        assert not p.severs("us", "ap", 7.0)

    def test_bidirectional_and_wildcard(self):
        both = RegionPartition(region="us", peer="eu", start_s=0.0, end_s=1.0)
        assert both.severs("eu", "us", 0.5)
        isolated = RegionPartition(region="us", start_s=0.0, end_s=1.0)
        assert isolated.severs("us", "eu", 0.5)
        assert isolated.severs("us", "ap", 0.5)
        assert isolated.severs("eu", "us", 0.5)
        assert not isolated.severs("eu", "ap", 0.5)

    def test_rejected_by_engine_fault_validation(self):
        partition = RegionPartition(region="us", start_s=0.0, end_s=1.0)
        with pytest.raises(ValueError, match="MultiRegionSpec.partitions"):
            affected_versions(partition)


class TestMultiRegionSpec:
    def test_duplicate_region_names(self):
        with pytest.raises(ValueError, match="duplicate region names"):
            MultiRegionSpec(
                name="m", regions=(_region("us"), _region("us"))
            )

    def test_failover_targets_validated(self):
        with pytest.raises(ValueError, match="unknown failover"):
            MultiRegionSpec(
                name="m",
                regions=(_region("us", failover=("mars",)), _region("eu")),
            )
        with pytest.raises(ValueError, match="itself"):
            MultiRegionSpec(
                name="m",
                regions=(_region("us", failover=("us",)), _region("eu")),
            )

    def test_partitions_and_links_validated(self):
        regions = (_region("us"), _region("eu"))
        with pytest.raises(ValueError, match="unknown region"):
            MultiRegionSpec(
                name="m",
                regions=regions,
                partitions=(
                    RegionPartition(region="mars", start_s=0.0, end_s=1.0),
                ),
            )
        with pytest.raises(ValueError, match="unknown pair"):
            MultiRegionSpec(
                name="m",
                regions=regions,
                link_latencies={("us", "mars"): 0.1},
            )
        with pytest.raises(ValueError, match="non-negative"):
            MultiRegionSpec(
                name="m", regions=regions, link_latencies={("us", "eu"): -0.1}
            )

    def test_shard_seeds_unique_and_stable(self):
        spec = MultiRegionSpec(
            name="m", regions=(_region("us"), _region("eu"), _region("ap")),
            seed=42,
        )
        seeds = [spec.shard_seed(i) for i in range(3)]
        assert len(set(seeds)) == 3
        assert seeds == [spec.shard_seed(i) for i in range(3)]
        other = MultiRegionSpec(name="m", regions=spec.regions, seed=43)
        assert [other.shard_seed(i) for i in range(3)] != seeds

    def test_failover_order_defaults_to_spec_order(self):
        spec = MultiRegionSpec(
            name="m",
            regions=(
                _region("us"),
                _region("eu", failover=("ap",)),
                _region("ap"),
            ),
        )
        assert spec.failover_order("us") == ("eu", "ap")
        assert spec.failover_order("eu") == ("ap",)

    def test_link_latency_override(self):
        spec = MultiRegionSpec(
            name="m",
            regions=(_region("us"), _region("eu")),
            link_latency_s=0.05,
            link_latencies={("us", "eu"): 0.2},
        )
        assert spec.link_latency("us", "eu") == 0.2
        assert spec.link_latency("eu", "us") == 0.05

    def test_equivalent_scenario_carries_spawned_seed(self):
        spec = MultiRegionSpec(
            name="m", regions=(_region("us"), _region("eu")), seed=7
        )
        scenario = spec.equivalent_scenario(1)
        assert scenario.seed == spec.shard_seed(1)
        assert scenario.pools == spec.regions[1].scenario.pools


def test_derive_capacity_rps(toy):
    region = _region("us", scenario=_scenario(pools={"fast": 2, "slow": 1}))
    capacity = derive_capacity_rps(region, toy)
    # fast: 2 nodes at 50 ms => 40 rps; slow: 1 node at 400 ms => 2.5 rps.
    assert capacity == pytest.approx(42.5)
