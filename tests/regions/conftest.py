"""Engine-matrix activation + shared fixtures for the regions suite.

Multi-region runs resolve their per-shard engine from the same
``REPRO_SIM_ENGINE`` override the root ``sim_engine`` fixture sets, so
every test here executes under legacy in the fast tier and both
engines in the full tier — shards included.
"""

import pytest

from repro.service.simulation.scenarios import scenario_measurements


@pytest.fixture(autouse=True)
def _sim_engine_matrix(sim_engine):
    return sim_engine


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()
