"""Plan-phase behaviour: health timelines, saturation, partitions, order."""

import numpy as np
import pytest

from repro.service.regions import (
    MultiRegionSpec,
    RegionRouter,
    RegionSpec,
)
from repro.service.simulation import (
    NodeCrash,
    PoissonArrivals,
    RegionPartition,
    ScenarioSpec,
)
from repro.service.simulation.scenarios import _tiered_configuration


def _scenario(name, **overrides):
    defaults = dict(
        name=name,
        arrivals=PoissonArrivals(5.0),
        n_requests=60,
        pools={"fast": 1, "slow": 1},
        configuration=_tiered_configuration(),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _region(name, **overrides):
    scenario_overrides = overrides.pop("scenario_overrides", {})
    defaults = dict(
        name=name, scenario=_scenario(f"s-{name}", **scenario_overrides)
    )
    defaults.update(overrides)
    return RegionSpec(**defaults)


CRASH = NodeCrash(at_s=2.0, version="fast", node_index=0, recover_at_s=6.0)


def test_healthy_regions_keep_everything_local(toy):
    spec = MultiRegionSpec(
        name="steady", regions=(_region("us"), _region("eu")), seed=5
    )
    plan = RegionRouter(spec, toy).plan()
    assert plan.boundary_events == ()
    for shard in plan.shards:
        assert shard.n_outgoing == shard.n_denied == shard.n_incoming == 0
        assert shard.n_kept == shard.n_assigned == len(shard.submissions)
        assert [s.request_id for s in shard.submissions] == [
            f"load_{j:06d}" for j in range(shard.n_assigned)
        ]
        assert all(s.origin == shard.region.name for s in shard.submissions)
        assert all(s.extra_latency_s == 0.0 for s in shard.submissions)


def test_dead_pool_window_fails_over(toy):
    spec = MultiRegionSpec(
        name="outage",
        regions=(_region("us", scenario_overrides={"faults": (CRASH,)}),
                 _region("eu")),
        link_latency_s=0.1,
        seed=5,
    )
    plan = RegionRouter(spec, toy).plan()
    us, eu = plan.shards
    failovers = [e for e in plan.boundary_events if e.kind == "failover"]
    assert failovers, "the crash window should have spilled traffic"
    assert us.n_outgoing == len(failovers) == eu.n_incoming
    assert us.n_kept + us.n_outgoing == us.n_assigned
    for event in failovers:
        assert event.region == "us"
        assert event.target == "eu"
        assert 2.0 <= event.time_s < 6.0
        assert event.detail.endswith("|down")
    incoming = [s for s in eu.submissions if s.origin == "us"]
    assert len(incoming) == eu.n_incoming
    for sub in incoming:
        assert sub.request_id.startswith("us:load_")
        assert sub.extra_latency_s == pytest.approx(0.2)
    # Locals first, then incoming sorted by arrival time.
    arrivals = [s.at_time for s in eu.submissions if s.origin == "us"]
    assert arrivals == sorted(arrivals)


def test_saturation_trigger_spills_over_capacity(toy):
    hot = _region(
        "hot",
        capacity_rps=2.0,
        saturation_window_s=1.0,
        scenario_overrides={
            "arrivals": PoissonArrivals(8.0), "n_requests": 80
        },
    )
    spec = MultiRegionSpec(
        name="brownout", regions=(hot, _region("cold")), seed=9
    )
    plan = RegionRouter(spec, toy).plan()
    hot_shard = plan.shards[0]
    assert hot_shard.n_outgoing > 0
    saturated = [
        e for e in plan.boundary_events
        if e.kind == "failover" and e.detail.endswith("|saturated")
    ]
    assert len(saturated) == hot_shard.n_outgoing
    # At ~8 rps against a 2 rps advertised capacity most arrivals spill,
    # but the trailing window always admits up to its limit locally.
    assert hot_shard.n_kept > 0


def test_no_capacity_means_no_saturation(toy):
    spec = MultiRegionSpec(
        name="steady",
        regions=(
            _region(
                "hot",
                scenario_overrides={
                    "arrivals": PoissonArrivals(50.0), "n_requests": 100
                },
            ),
            _region("cold"),
        ),
        seed=9,
    )
    plan = RegionRouter(spec, toy).plan()
    assert plan.shards[0].n_outgoing == 0


def test_partition_denies_failover_and_logs_edges(toy):
    spec = MultiRegionSpec(
        name="partitioned",
        regions=(_region("us", scenario_overrides={"faults": (CRASH,)}),
                 _region("eu")),
        partitions=(
            RegionPartition(region="us", peer="eu", start_s=0.0, end_s=10.0),
        ),
        seed=5,
    )
    plan = RegionRouter(spec, toy).plan()
    us = plan.shards[0]
    kinds = {e.kind for e in plan.boundary_events}
    assert "failover" not in kinds
    assert "partition" in kinds and "partition-heal" in kinds
    denials = [
        e for e in plan.boundary_events if e.kind == "failover-denied"
    ]
    assert us.n_denied == len(denials) > 0
    # Denied requests stay home: kept covers the full assigned stream.
    assert us.n_kept == us.n_assigned
    assert us.n_outgoing == 0
    for event in denials:
        assert event.detail.endswith("|down|no-target")


def test_failover_skips_partitioned_link_to_second_choice(toy):
    spec = MultiRegionSpec(
        name="reroute",
        regions=(
            _region(
                "us",
                failover=("eu", "ap"),
                scenario_overrides={"faults": (CRASH,)},
            ),
            _region("eu"),
            _region("ap"),
        ),
        partitions=(
            RegionPartition(region="us", peer="eu", start_s=0.0, end_s=10.0),
        ),
        seed=5,
    )
    plan = RegionRouter(spec, toy).plan()
    failovers = [e for e in plan.boundary_events if e.kind == "failover"]
    assert failovers
    assert all(e.target == "ap" for e in failovers)


def test_failover_skips_dead_target(toy):
    spec = MultiRegionSpec(
        name="both-down",
        regions=(
            _region("us", scenario_overrides={"faults": (CRASH,)}),
            _region("eu", scenario_overrides={"faults": (CRASH,)}),
            _region("ap"),
        ),
        seed=5,
    )
    plan = RegionRouter(spec, toy).plan()
    failovers = [e for e in plan.boundary_events if e.kind == "failover"]
    assert failovers
    assert all(e.target == "ap" for e in failovers)


def test_boundary_events_totally_ordered(toy):
    spec = MultiRegionSpec(
        name="ordered",
        regions=(
            _region("us", scenario_overrides={"faults": (CRASH,)}),
            _region(
                "eu",
                capacity_rps=2.0,
                scenario_overrides={
                    "arrivals": PoissonArrivals(8.0), "n_requests": 80
                },
            ),
            _region("ap"),
        ),
        partitions=(
            RegionPartition(region="eu", peer="ap", start_s=3.0, end_s=7.0),
        ),
        seed=11,
    )
    plan = RegionRouter(spec, toy).plan()
    index_of = {name: i for i, name in enumerate(spec.region_names)}
    keys = [
        (e.time_s, index_of[e.region], e.seq) for e in plan.boundary_events
    ]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)
    # Per-region seq counters are dense from zero in time order.
    for name in spec.region_names:
        seqs = [e.seq for e in plan.boundary_events if e.region == name]
        assert sorted(seqs) == list(range(len(seqs)))


def test_plan_draws_match_engine_run_order(toy):
    """The plan's (times, picks) replicate run()'s exact draw sequence."""
    spec = MultiRegionSpec(name="one", regions=(_region("us"),), seed=13)
    plan = RegionRouter(spec, toy).plan()
    shard = plan.shards[0]
    rng = np.random.default_rng(spec.shard_seed(0))
    times = shard.region.scenario.arrivals.times(shard.n_assigned, rng)
    picks = rng.integers(0, len(toy.request_ids), size=shard.n_assigned)
    assert [s.at_time for s in shard.submissions] == pytest.approx(
        list(times)
    )
    assert [s.payload for s in shard.submissions] == [
        toy.request_ids[int(p)] for p in picks
    ]
