"""Region-aware control surfaces: SLO replay, decisions, engine fallbacks,
the empty-shard edge and the gateway's multi-region entry point."""

import dataclasses
import hashlib

import pytest

from repro.service.gateway import SimulatedBackend, TierGateway
from repro.service.regions import (
    MultiRegionSpec,
    RegionSpec,
    region_scenarios,
    run_multi_region,
)
from repro.service.simulation import (
    NodeCrash,
    PoissonArrivals,
    ScenarioSpec,
)
from repro.service.simulation.scenarios import _tiered_configuration


def _scenario(name, **overrides):
    defaults = dict(
        name=name,
        arrivals=PoissonArrivals(4.0),
        n_requests=50,
        pools={"fast": 1, "slow": 1},
        configuration=_tiered_configuration(),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


@pytest.fixture(scope="module")
def brownout(toy):
    return run_multi_region(
        region_scenarios()["partitioned-brownout"], toy
    )


class TestRegionSLOReplay:
    def test_entries_name_the_region(self, brownout):
        entries = brownout.shard("ap-south").slo_log
        assert entries, "the brownout must trip its region SLOs"
        for entry in entries:
            assert entry.region == "ap-south"
            assert entry.kind in ("region-slo", "region-decision")
            assert "[ap-south]" in entry.detail
        assert all(not s.slo_log for s in brownout.shards
                   if s.region != "ap-south")

    def test_breach_emits_a_region_decision(self, brownout):
        decisions = [
            e
            for e in brownout.shard("ap-south").slo_log
            if e.kind == "region-decision"
        ]
        assert decisions, "a BREACH must produce an actionable advisory"
        for decision in decisions:
            assert " shed ap-south: " in decision.detail or (
                " adapt ap-south: " in decision.detail
            )

    def test_slo_entries_enter_the_digest(self, toy):
        spec = region_scenarios()["partitioned-brownout"]
        muted_regions = tuple(
            dataclasses.replace(r, slos=()) if r.name == "ap-south" else r
            for r in spec.regions
        )
        muted = dataclasses.replace(spec, regions=muted_regions)
        loud = run_multi_region(spec, toy)
        quiet = run_multi_region(muted, toy)
        # Identical routing and shard behaviour; only the SLO replay
        # differs — and the digest must see it.
        assert [s.digest for s in loud.shards] == [
            s.digest for s in quiet.shards
        ]
        assert loud.digest() != quiet.digest()
        assert quiet.summary()["n_region_slo_events"] == 0.0


class TestEngineFallbackSurface:
    def test_faulted_region_reports_its_fallback(self, toy):
        report = run_multi_region(
            region_scenarios()["regional-outage"], toy, engine="columnar"
        )
        fallbacks = report.engine_fallbacks()
        assert set(fallbacks) == {"eu-west"}
        assert "NodeCrash" in fallbacks["eu-west"]
        assert report.shard("us-east").engine_used == "columnar"
        assert report.shard("eu-west").engine_used == "legacy"
        assert report.summary()["n_engine_fallbacks"] == 1.0

    def test_legacy_runs_report_no_fallback(self, toy):
        report = run_multi_region(
            region_scenarios()["tri-steady"], toy, engine="legacy"
        )
        assert report.engine_fallbacks() == {}
        assert all(s.engine_used == "legacy" for s in report.shards)


class TestEmptyShard:
    def test_fully_failed_over_region_yields_empty_shard(self, toy):
        dead = NodeCrash(at_s=0.0, version="fast", node_index=0)
        spec = MultiRegionSpec(
            name="evacuated",
            regions=(
                RegionSpec(
                    name="us", scenario=_scenario("s-us", faults=(dead,))
                ),
                RegionSpec(name="eu", scenario=_scenario("s-eu")),
            ),
            seed=41,
        )
        report = run_multi_region(spec, toy)
        us = report.shard("us")
        assert us.n_submitted == 0
        assert us.n_outgoing == us.n_assigned
        expected = hashlib.sha256(b"empty-shard:us").hexdigest()
        assert us.digest == expected
        assert us.summary == {}
        report.verify_conservation()
        eu = report.shard("eu")
        assert eu.n_incoming == us.n_outgoing
        assert report.digest() == run_multi_region(spec, toy).digest()


class TestGatewayFromRegion:
    def test_gateway_session_matches_region_shard(self, toy):
        spec = region_scenarios()["tri-steady"]
        report = run_multi_region(spec, toy)
        region = spec.region("eu-west")
        backend = SimulatedBackend.from_region(
            spec, "eu-west", toy, check_invariants=True
        )
        gateway = TierGateway(
            backend, configuration=region.scenario.configuration
        )
        gateway_report = gateway.run_load(
            region.scenario.arrivals,
            region.scenario.n_requests,
            tolerance=region.scenario.tolerance,
            objective=region.scenario.objective,
            payload_ids=toy.request_ids,
        )
        assert gateway_report.digest() == report.shard("eu-west").digest

    def test_region_resolves_by_name_or_index(self, toy):
        spec = region_scenarios()["tri-steady"]
        by_name = SimulatedBackend.from_region(spec, "ap-south", toy)
        by_index = SimulatedBackend.from_region(spec, 2, toy)
        assert by_name._seed == by_index._seed == spec.shard_seed(2)
        with pytest.raises(KeyError, match="unknown region"):
            SimulatedBackend.from_region(spec, "mars", toy)
