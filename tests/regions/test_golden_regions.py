"""Golden-pinned multi-region scenarios.

The three canonical :func:`region_scenarios` compositions are pinned to
SHA-256 digests of their merged multi-region behaviour (per-shard report
digests, routing counts, the boundary-event stream, region SLO entries)
checked into ``tests/regions/golden/``.  Regenerate after an intentional
behaviour change with::

    PYTHONPATH=src python -m pytest tests/regions/test_golden_regions.py \
        --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.service.regions import region_scenarios, run_multi_region

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

GOLDEN_REGION_SCENARIOS = (
    "tri-steady",
    "regional-outage",
    "partitioned-brownout",
)


def _golden_payload(name, report):
    """The digest plus readable context (only ``digest`` is asserted)."""
    summary = report.summary()
    return {
        "scenario": name,
        "digest": report.digest(),
        "headline": {
            "n_regions": summary["n_regions"],
            "n_requests": summary["n_requests"],
            "n_failovers": summary["n_failovers"],
            "n_failover_denied": summary["n_failover_denied"],
            "n_boundary_events": summary["n_boundary_events"],
            "n_region_slo_events": summary["n_region_slo_events"],
            "availability": round(summary["availability"], 6),
            "p95_user_latency_s": round(
                summary["p95_user_latency_s"], 9
            ),
            "total_cost": round(summary["total_cost"], 12),
        },
    }


@pytest.mark.parametrize("name", GOLDEN_REGION_SCENARIOS)
def test_golden_region_scenario(name, toy, update_golden):
    spec = region_scenarios()[name]
    report = run_multi_region(spec, toy, check_invariants=True)
    payload = _golden_payload(name, report)
    path = GOLDEN_DIR / f"{name}.json"

    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return

    assert path.exists(), (
        f"golden file {path} is missing; generate it with "
        "`pytest tests/regions/test_golden_regions.py --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert payload["digest"] == golden["digest"], (
        f"multi-region scenario {name!r} no longer reproduces its golden "
        "trace.\n"
        f"  golden : {golden['headline']}\n"
        f"  current: {payload['headline']}\n"
        "If this behaviour change is intentional, regenerate with "
        "--update-golden and explain the change in the commit message."
    )


def test_golden_scenarios_exercise_the_vocabulary(toy):
    """The pinned set covers locality, failover, denial and region SLOs."""
    scenarios = region_scenarios()
    steady = run_multi_region(scenarios["tri-steady"], toy)
    assert steady.n_failovers == 0
    assert steady.boundary_events == ()

    outage = run_multi_region(scenarios["regional-outage"], toy)
    assert outage.n_failovers > 0
    assert outage.shard("us-east").n_incoming == outage.n_failovers

    brownout = run_multi_region(scenarios["partitioned-brownout"], toy)
    assert brownout.n_failovers > 0
    kinds = {e.kind for e in brownout.boundary_events}
    assert {"failover", "partition", "partition-heal"} <= kinds
    assert any(s.slo_log for s in brownout.shards)


def test_golden_region_scenarios_are_seed_sensitive(toy):
    from dataclasses import replace

    spec = region_scenarios()["regional-outage"]
    base = run_multi_region(spec, toy)
    reseeded = run_multi_region(spec=replace(spec, seed=spec.seed + 1),
                                measurements=toy)
    assert base.digest() != reseeded.digest()
