"""The determinism contract: plain-scenario equivalence, serial == parallel,
conservation, and a fuzzed differential sweep over random topologies."""

import dataclasses

import numpy as np
import pytest

from repro.service.regions import (
    MultiRegionSpec,
    RegionRouter,
    RegionSpec,
    build_shard_tasks,
    merge_shards,
    run_multi_region,
    run_shard,
)
from repro.service.regions.report import ConservationError
from repro.service.simulation import (
    NodeCrash,
    PoissonArrivals,
    RegionPartition,
    RetryPolicy,
    ScenarioSpec,
    run_scenario,
)
from repro.service.simulation.scenarios import _tiered_configuration


def _scenario(name, **overrides):
    defaults = dict(
        name=name,
        arrivals=PoissonArrivals(4.0),
        n_requests=50,
        pools={"fast": 1, "slow": 1},
        configuration=_tiered_configuration(),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _spec_with_failover(seed=21):
    crash = NodeCrash(at_s=2.0, version="fast", node_index=0, recover_at_s=6.0)
    return MultiRegionSpec(
        name="failover",
        regions=(
            RegionSpec(name="us", scenario=_scenario("s-us", faults=(crash,))),
            RegionSpec(name="eu", scenario=_scenario("s-eu")),
        ),
        link_latency_s=0.1,
        seed=seed,
    )


class TestPlainScenarioEquivalence:
    def test_one_region_spec_matches_plain_run(self, toy):
        spec = MultiRegionSpec(
            name="solo",
            regions=(RegionSpec(name="us", scenario=_scenario("s-us")),),
            seed=17,
        )
        report = run_multi_region(spec, toy)
        plain = run_scenario(spec.equivalent_scenario(0), toy)
        assert report.shards[0].digest == plain.digest()

    def test_no_failover_shards_match_plain_runs(self, toy):
        """Locality-only multi-region == N independent plain scenarios."""
        spec = MultiRegionSpec(
            name="steady",
            regions=(
                RegionSpec(name="us", scenario=_scenario("s-us")),
                RegionSpec(
                    name="eu",
                    scenario=_scenario(
                        "s-eu", arrivals=PoissonArrivals(2.0), n_requests=40
                    ),
                ),
            ),
            seed=23,
        )
        report = run_multi_region(spec, toy)
        assert report.n_failovers == 0
        for index, shard in enumerate(report.shards):
            plain = run_scenario(spec.equivalent_scenario(index), toy)
            assert shard.digest == plain.digest()

    def test_embedded_scenario_seed_is_ignored(self, toy):
        spec_a = MultiRegionSpec(
            name="solo",
            regions=(
                RegionSpec(name="us", scenario=_scenario("s-us", seed=1)),
            ),
            seed=17,
        )
        spec_b = dataclasses.replace(
            spec_a,
            regions=(
                RegionSpec(name="us", scenario=_scenario("s-us", seed=999)),
            ),
        )
        assert (
            run_multi_region(spec_a, toy).digest()
            == run_multi_region(spec_b, toy).digest()
        )


class TestSerialParallelEquivalence:
    def test_parallel_digest_matches_serial(self, toy):
        spec = _spec_with_failover()
        serial = run_multi_region(spec, toy)
        parallel = run_multi_region(spec, toy, parallel=2)
        assert serial.digest() == parallel.digest()
        assert serial.summary() == parallel.summary()

    def test_shard_execution_order_is_irrelevant(self, toy):
        spec = _spec_with_failover()
        plan = RegionRouter(spec, toy).plan()
        tasks = build_shard_tasks(plan, toy)
        forward = merge_shards(plan, [run_shard(t) for t in tasks])
        reversed_ = merge_shards(
            plan, [run_shard(t) for t in reversed(tasks)]
        )
        assert forward.digest() == reversed_.digest()


class TestStability:
    def test_repeated_runs_are_bit_identical(self, toy):
        spec = _spec_with_failover()
        assert (
            run_multi_region(spec, toy).digest()
            == run_multi_region(spec, toy).digest()
        )

    def test_digest_is_seed_sensitive(self, toy):
        assert (
            run_multi_region(_spec_with_failover(seed=21), toy).digest()
            != run_multi_region(_spec_with_failover(seed=22), toy).digest()
        )


class TestConservation:
    def test_failover_run_conserves_requests(self, toy):
        report = run_multi_region(
            _spec_with_failover(), toy, check_invariants=True
        )
        assert report.n_failovers > 0
        report.verify_conservation()
        assert (
            report.n_completed + report.n_failed + report.n_shed
            == report.n_requests
        )
        for shard in report.shards:
            assert (
                shard.n_completed + shard.n_failed + shard.n_shed
                == shard.n_submitted
            )
            assert shard.n_local + shard.n_incoming == shard.n_submitted

    def test_tampered_counts_raise(self, toy):
        report = run_multi_region(_spec_with_failover(), toy)
        broken = dataclasses.replace(
            report.shards[0], n_completed=report.shards[0].n_completed + 1
        )
        tampered = dataclasses.replace(
            report, shards=(broken,) + report.shards[1:]
        )
        with pytest.raises(ConservationError):
            tampered.verify_conservation()

    def test_merge_rejects_missing_and_foreign_shards(self, toy):
        spec = _spec_with_failover()
        plan = RegionRouter(spec, toy).plan()
        tasks = build_shard_tasks(plan, toy)
        results = [run_shard(t) for t in tasks]
        with pytest.raises(ValueError, match="missing shard"):
            merge_shards(plan, results[:1])
        foreign = dataclasses.replace(results[0], region="mars")
        with pytest.raises(ValueError, match="missing shard"):
            merge_shards(plan, [foreign, results[1]])


def _fuzz_spec(rng):
    """A random small multi-region spec (topology, faults, capacity)."""
    n_regions = int(rng.integers(1, 4))
    regions = []
    for i in range(n_regions):
        faults = ()
        if rng.random() < 0.5:
            at_s = float(rng.uniform(0.5, 4.0))
            faults = (
                NodeCrash(
                    at_s=at_s,
                    version="fast",
                    node_index=0,
                    recover_at_s=at_s + float(rng.uniform(1.0, 4.0)),
                ),
            )
        retry = (
            RetryPolicy(max_attempts=2, backoff_s=0.02)
            if rng.random() < 0.5
            else None
        )
        capacity = (
            float(rng.uniform(1.0, 4.0)) if rng.random() < 0.4 else None
        )
        regions.append(
            RegionSpec(
                name=f"r{i}",
                scenario=_scenario(
                    f"fuzz-r{i}",
                    arrivals=PoissonArrivals(float(rng.uniform(2.0, 8.0))),
                    n_requests=int(rng.integers(20, 60)),
                    faults=faults,
                    retry=retry,
                ),
                capacity_rps=capacity,
            )
        )
    partitions = ()
    if n_regions > 1 and rng.random() < 0.5:
        src, dst = rng.choice(n_regions, size=2, replace=False)
        start = float(rng.uniform(0.0, 5.0))
        partitions = (
            RegionPartition(
                region=f"r{src}",
                peer=f"r{dst}",
                start_s=start,
                end_s=start + float(rng.uniform(1.0, 6.0)),
            ),
        )
    return MultiRegionSpec(
        name="fuzz",
        regions=tuple(regions),
        partitions=partitions,
        link_latency_s=float(rng.uniform(0.01, 0.2)),
        seed=int(rng.integers(0, 2**31)),
    )


@pytest.mark.parametrize("case", range(6))
def test_fuzzed_differential(case, toy):
    """Random topologies uphold the full determinism contract."""
    rng = np.random.default_rng(1000 + case)
    spec = _fuzz_spec(rng)
    report = run_multi_region(spec, toy, check_invariants=True)
    report.verify_conservation()
    assert run_multi_region(spec, toy).digest() == report.digest()
    if report.n_failovers == 0 and report.n_denied == 0:
        for index in range(len(spec.regions)):
            plain = run_scenario(spec.equivalent_scenario(index), toy)
            assert report.shards[index].digest == plain.digest()


@pytest.mark.slow
@pytest.mark.parametrize("case", range(6, 18))
def test_fuzzed_differential_deep(case, toy):
    """Wider fuzz sweep, including the parallel path, on the slow tier."""
    rng = np.random.default_rng(1000 + case)
    spec = _fuzz_spec(rng)
    serial = run_multi_region(spec, toy, check_invariants=True)
    parallel = run_multi_region(spec, toy, parallel=3)
    assert serial.digest() == parallel.digest()
