"""Tests for the synthetic acoustic front-end."""

import numpy as np
import pytest

from repro.asr.acoustic import AcousticFrontEnd
from repro.asr.lexicon import Lexicon
from repro.datasets.voxforge import SpeakerProfile, Utterance


def _speaker(snr_db: float, rate: float = 1.0) -> SpeakerProfile:
    return SpeakerProfile(
        speaker_id=f"spk_{snr_db}", snr_db=snr_db, speaking_rate=rate, accent_shift=0.1
    )


def _utterance(words, speaker, uid="utt_test") -> Utterance:
    return Utterance(utterance_id=uid, speaker=speaker, words=tuple(words))


@pytest.fixture()
def lexicon():
    return Lexicon(["bado", "kine", "losu", "meti"])


class TestValidation:
    def test_rejects_bad_frames_per_phone(self, lexicon):
        with pytest.raises(ValueError):
            AcousticFrontEnd(lexicon, frames_per_phone=0)

    def test_rejects_bad_scale(self, lexicon):
        with pytest.raises(ValueError):
            AcousticFrontEnd(lexicon, emission_scale=0.0)


class TestObservation:
    def test_shapes_and_normalisation(self, lexicon):
        front_end = AcousticFrontEnd(lexicon)
        obs = front_end.observe(_utterance(["bado", "kine"], _speaker(12.0)))
        assert obs.log_likelihoods.shape == (obs.n_frames, lexicon.n_phones)
        assert len(obs.frame_phones) == obs.n_frames
        # log-softmax rows must sum to one in probability space
        probs = np.exp(obs.log_likelihoods).sum(axis=1)
        assert np.allclose(probs, 1.0)

    def test_deterministic_per_utterance(self, lexicon):
        front_end = AcousticFrontEnd(lexicon)
        utterance = _utterance(["bado"], _speaker(10.0))
        a = front_end.observe(utterance)
        b = front_end.observe(utterance)
        assert np.array_equal(a.log_likelihoods, b.log_likelihoods)

    def test_different_utterance_ids_differ(self, lexicon):
        front_end = AcousticFrontEnd(lexicon)
        a = front_end.observe(_utterance(["bado"], _speaker(10.0), uid="u1"))
        b = front_end.observe(_utterance(["bado"], _speaker(10.0), uid="u2"))
        assert not np.array_equal(a.log_likelihoods, b.log_likelihoods)

    def test_higher_snr_cleaner_frames(self, lexicon):
        front_end = AcousticFrontEnd(lexicon)
        noisy = front_end.observe(_utterance(["bado", "kine"], _speaker(0.0), uid="n"))
        clean = front_end.observe(_utterance(["bado", "kine"], _speaker(25.0), uid="c"))
        assert clean.oracle_accuracy() > noisy.oracle_accuracy()

    def test_faster_speaker_fewer_frames(self, lexicon):
        front_end = AcousticFrontEnd(lexicon)
        slow = front_end.observe(
            _utterance(["bado", "kine"], _speaker(10.0, rate=0.85), uid="slow")
        )
        fast = front_end.observe(
            _utterance(["bado", "kine"], _speaker(10.0, rate=1.3), uid="fast")
        )
        assert fast.n_frames < slow.n_frames

    def test_observe_many(self, lexicon):
        front_end = AcousticFrontEnd(lexicon)
        utterances = [
            _utterance(["bado"], _speaker(10.0), uid=f"u{i}") for i in range(3)
        ]
        observations = front_end.observe_many(utterances)
        assert len(observations) == 3
        assert {o.utterance_id for o in observations} == {"u0", "u1", "u2"}

    def test_frame_phones_match_lexicon_expansion(self, lexicon):
        front_end = AcousticFrontEnd(lexicon)
        obs = front_end.observe(_utterance(["bado"], _speaker(15.0)))
        expected_phones = set(lexicon.pronunciation_ids("bado"))
        assert set(obs.frame_phones) <= expected_phones
