"""Tests for the service-facing ASR engine and versions."""

import pytest

from repro.asr import ASR_VERSIONS, ASREngine, asr_version_names, get_asr_version
from repro.asr.confidence import hypothesis_confidence
from repro.asr.beam_search import DecodeResult


@pytest.fixture(scope="module")
def engine(request):
    corpus = request.getfixturevalue("speech_corpus")
    return ASREngine.from_corpus(corpus)


class TestVersionsTable:
    def test_seven_versions(self):
        assert len(ASR_VERSIONS) == 7
        assert asr_version_names()[0] == "asr_v1"
        assert asr_version_names()[-1] == "asr_v7"

    def test_lookup(self):
        assert get_asr_version("asr_v3").name == "asr_v3"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_asr_version("asr_v99")

    def test_versions_increase_in_width(self):
        widths = [cfg.search_width_score() for cfg in ASR_VERSIONS.values()]
        assert widths == sorted(widths)


class TestEngine:
    def test_from_corpus_builds_consistent_components(self, speech_corpus, engine):
        assert engine.lexicon.n_words == len(speech_corpus.vocabulary)
        assert engine.language_model.is_fitted

    def test_transcribe_reports_all_fields(self, speech_corpus, engine):
        utterance = speech_corpus[0]
        result = engine.transcribe(utterance, ASR_VERSIONS["asr_v3"])
        assert result.utterance_id == utterance.utterance_id
        assert result.reference == utterance.words
        assert result.config_name == "asr_v3"
        assert result.wer >= 0.0
        assert 0.0 <= result.confidence <= 1.0
        assert result.latency_s > 0.0
        assert result.n_expansions > 0

    def test_latency_model_monotone_in_work(self, engine):
        fake_fast = DecodeResult(
            word_ids=(0,), words=("x",), log_score=-1.0, runner_up_score=-2.0,
            n_expansions=100, n_frames=10, peak_active=5, config_name="a",
        )
        fake_slow = DecodeResult(
            word_ids=(0,), words=("x",), log_score=-1.0, runner_up_score=-2.0,
            n_expansions=1000, n_frames=10, peak_active=5, config_name="a",
        )
        assert engine.latency_of(fake_slow) > engine.latency_of(fake_fast)

    def test_observation_cache_reused(self, speech_corpus, engine):
        utterance = speech_corpus[1]
        assert engine.observation_for(utterance) is engine.observation_for(utterance)

    def test_exactness_flag(self, speech_corpus, engine):
        result = engine.transcribe(speech_corpus[0], ASR_VERSIONS["asr_v7"])
        assert result.is_exact == (result.hypothesis == result.reference)

    def test_corpus_wer_and_latency_aggregation(self, speech_corpus, engine):
        results = engine.transcribe_corpus(
            speech_corpus.utterances[:6], ASR_VERSIONS["asr_v2"]
        )
        assert len(results) == 6
        assert ASREngine.corpus_wer(results) >= 0.0
        assert ASREngine.mean_latency(results) > 0.0

    def test_aggregation_rejects_empty(self):
        with pytest.raises(ValueError):
            ASREngine.corpus_wer([])
        with pytest.raises(ValueError):
            ASREngine.mean_latency([])

    def test_constructor_validates_latency_constants(self, speech_corpus):
        with pytest.raises(ValueError):
            ASREngine.from_corpus(speech_corpus, seconds_per_expansion=0.0)


class TestConfidence:
    def test_confidence_bounds(self):
        result = DecodeResult(
            word_ids=(0,), words=("x",), log_score=-30.0, runner_up_score=-31.0,
            n_expansions=10, n_frames=15, peak_active=3, config_name="c",
        )
        assert 0.0 <= hypothesis_confidence(result) <= 1.0

    def test_no_hypothesis_zero_confidence(self):
        result = DecodeResult(
            word_ids=(), words=(), log_score=float("-inf"),
            runner_up_score=float("-inf"), n_expansions=0, n_frames=5,
            peak_active=0, config_name="c",
        )
        assert hypothesis_confidence(result) == 0.0

    def test_better_fit_higher_confidence(self):
        poor = DecodeResult(
            word_ids=(0,), words=("x",), log_score=-60.0, runner_up_score=-60.5,
            n_expansions=10, n_frames=20, peak_active=3, config_name="c",
        )
        good = DecodeResult(
            word_ids=(0,), words=("x",), log_score=-20.0, runner_up_score=-40.0,
            n_expansions=10, n_frames=20, peak_active=3, config_name="c",
        )
        assert hypothesis_confidence(good) > hypothesis_confidence(poor)

    def test_rejects_negative_weights(self):
        result = DecodeResult(
            word_ids=(0,), words=("x",), log_score=-1.0, runner_up_score=-2.0,
            n_expansions=1, n_frames=1, peak_active=1, config_name="c",
        )
        with pytest.raises(ValueError):
            hypothesis_confidence(result, score_weight=-1.0)


class TestTradeOffAcrossVersions:
    def test_most_accurate_version_beats_fastest(self, asr_measurements):
        fastest = asr_measurements.fastest_version()
        most_accurate = asr_measurements.most_accurate_version()
        assert asr_measurements.mean_error(most_accurate) < asr_measurements.mean_error(
            fastest
        )
        assert asr_measurements.mean_latency(
            most_accurate
        ) > asr_measurements.mean_latency(fastest)
