"""Tests for the beam-search decoder."""

import numpy as np
import pytest

from repro.asr.acoustic import AcousticFrontEnd, AcousticObservation
from repro.asr.beam_search import BeamSearchConfig, BeamSearchDecoder
from repro.asr.hmm import DecodingGraph
from repro.asr.language_model import BigramLanguageModel
from repro.asr.lexicon import Lexicon
from repro.asr.wer import word_error_rate
from repro.datasets.voxforge import SpeakerProfile, Utterance


@pytest.fixture(scope="module")
def small_world():
    """A tiny vocabulary, uniform-ish LM and clean acoustic front-end."""
    vocabulary = ["bado", "kine", "losu", "meti", "rafu", "sove"]
    lexicon = Lexicon(vocabulary)
    model = BigramLanguageModel(n_words=len(vocabulary), smoothing=0.5)
    rng = np.random.default_rng(0)
    sentences = [list(rng.integers(0, len(vocabulary), size=4)) for _ in range(100)]
    model.fit(sentences)
    graph = DecodingGraph(lexicon, model)
    front_end = AcousticFrontEnd(lexicon, frames_per_phone=3)
    return lexicon, graph, front_end


def _utterance(words, uid, snr_db=20.0):
    speaker = SpeakerProfile(
        speaker_id="spk_clean", snr_db=snr_db, speaking_rate=1.0, accent_shift=0.05
    )
    return Utterance(utterance_id=uid, speaker=speaker, words=tuple(words))


class TestConfigValidation:
    def test_rejects_bad_max_active(self):
        with pytest.raises(ValueError):
            BeamSearchConfig(max_active=0)

    def test_rejects_bad_beam(self):
        with pytest.raises(ValueError):
            BeamSearchConfig(beam=0.0)

    def test_rejects_bad_scope(self):
        with pytest.raises(ValueError):
            BeamSearchConfig(scope="galaxy")

    def test_rejects_bad_breadth(self):
        with pytest.raises(ValueError):
            BeamSearchConfig(lm_breadth=0)

    def test_search_width_score_orders_configs(self):
        narrow = BeamSearchConfig(max_active=8, lm_breadth=4)
        wide = BeamSearchConfig(max_active=64, lm_breadth=None)
        assert wide.search_width_score() > narrow.search_width_score()


class TestDecoding:
    def test_clean_utterance_decoded_exactly(self, small_world):
        lexicon, graph, front_end = small_world
        config = BeamSearchConfig(name="wide", max_active=64, beam=12.0, lm_breadth=None)
        decoder = BeamSearchDecoder(graph, config)
        utterance = _utterance(["bado", "kine", "losu"], "clean_1", snr_db=25.0)
        result = decoder.decode(front_end.observe(utterance))
        assert result.words == utterance.words
        assert result.n_frames > 0
        assert result.n_expansions > 0
        assert result.config_name == "wide"

    def test_rejects_empty_observation(self, small_world):
        _, graph, _ = small_world
        decoder = BeamSearchDecoder(graph, BeamSearchConfig())
        empty = AcousticObservation(
            utterance_id="empty",
            log_likelihoods=np.zeros((0, graph.lexicon.n_phones)),
            frame_phones=(),
        )
        with pytest.raises(ValueError):
            decoder.decode(empty)

    def test_wider_search_does_more_work(self, small_world):
        _, graph, front_end = small_world
        utterance = _utterance(["bado", "kine", "losu", "meti"], "work_1", snr_db=8.0)
        observation = front_end.observe(utterance)
        narrow = BeamSearchDecoder(
            graph, BeamSearchConfig(max_active=6, beam=4.0, lm_breadth=2)
        ).decode(observation)
        wide = BeamSearchDecoder(
            graph, BeamSearchConfig(max_active=64, beam=12.0, lm_breadth=None)
        ).decode(observation)
        assert wide.n_expansions > narrow.n_expansions

    def test_wider_search_not_less_accurate_on_average(self, small_world):
        _, graph, front_end = small_world
        narrow_cfg = BeamSearchConfig(max_active=5, beam=3.0, lm_breadth=2)
        wide_cfg = BeamSearchConfig(max_active=64, beam=12.0, lm_breadth=None)
        narrow_wer, wide_wer = [], []
        rng = np.random.default_rng(3)
        for i in range(12):
            words = [graph.lexicon.words[w] for w in rng.integers(0, graph.n_words, 4)]
            utterance = _utterance(words, f"avg_{i}", snr_db=7.0)
            observation = front_end.observe(utterance)
            narrow_wer.append(
                word_error_rate(
                    BeamSearchDecoder(graph, narrow_cfg).decode(observation).words,
                    words,
                )
            )
            wide_wer.append(
                word_error_rate(
                    BeamSearchDecoder(graph, wide_cfg).decode(observation).words,
                    words,
                )
            )
        assert np.mean(wide_wer) <= np.mean(narrow_wer)

    def test_peak_active_respects_max_active(self, small_world):
        _, graph, front_end = small_world
        config = BeamSearchConfig(max_active=7, beam=20.0, lm_breadth=None)
        utterance = _utterance(["bado", "kine", "losu"], "peak_1", snr_db=5.0)
        result = BeamSearchDecoder(graph, config).decode(front_end.observe(utterance))
        assert result.peak_active <= 7

    def test_deterministic(self, small_world):
        _, graph, front_end = small_world
        config = BeamSearchConfig(max_active=16, beam=8.0, lm_breadth=4)
        utterance = _utterance(["rafu", "sove"], "det_1")
        observation = front_end.observe(utterance)
        a = BeamSearchDecoder(graph, config).decode(observation)
        b = BeamSearchDecoder(graph, config).decode(observation)
        assert a.words == b.words
        assert a.log_score == b.log_score
        assert a.n_expansions == b.n_expansions

    def test_score_margin_non_negative(self, small_world):
        _, graph, front_end = small_world
        config = BeamSearchConfig(max_active=32, beam=10.0, lm_breadth=None)
        utterance = _utterance(["meti", "bado"], "margin_1")
        result = BeamSearchDecoder(graph, config).decode(front_end.observe(utterance))
        assert result.score_margin >= 0.0

    @pytest.mark.parametrize("scope", ["local", "global", "network"])
    def test_all_scopes_produce_hypotheses(self, small_world, scope):
        _, graph, front_end = small_world
        config = BeamSearchConfig(max_active=24, beam=8.0, lm_breadth=6, scope=scope)
        utterance = _utterance(["bado", "kine"], f"scope_{scope}")
        result = BeamSearchDecoder(graph, config).decode(front_end.observe(utterance))
        assert len(result.words) >= 1
