"""Tests for the bigram language model."""

import numpy as np
import pytest

from repro.asr.language_model import START_CONTEXT, BigramLanguageModel


@pytest.fixture()
def fitted_model():
    model = BigramLanguageModel(n_words=4, smoothing=0.1)
    # word 0 is usually followed by word 1; word 2 starts most sentences.
    sentences = [[2, 0, 1], [2, 0, 1, 3], [0, 1], [2, 3, 0, 1]]
    return model.fit(sentences)


class TestConstruction:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            BigramLanguageModel(0)
        with pytest.raises(ValueError):
            BigramLanguageModel(5, smoothing=0.0)

    def test_unfitted_queries_raise(self):
        model = BigramLanguageModel(3)
        assert not model.is_fitted
        with pytest.raises(RuntimeError):
            model.log_prob(0)


class TestFit:
    def test_probabilities_normalise(self, fitted_model):
        for context in [START_CONTEXT, 0, 1, 2, 3]:
            probs = np.exp(fitted_model.successor_log_probs(context))
            assert probs.sum() == pytest.approx(1.0)

    def test_observed_bigram_more_likely(self, fitted_model):
        assert fitted_model.log_prob(1, 0) > fitted_model.log_prob(2, 0)

    def test_start_distribution_reflects_data(self, fitted_model):
        assert fitted_model.log_prob(2, START_CONTEXT) > fitted_model.log_prob(
            3, START_CONTEXT
        )

    def test_rejects_out_of_vocabulary(self):
        model = BigramLanguageModel(3)
        with pytest.raises(ValueError):
            model.fit([[0, 7]])

    def test_empty_sentences_ignored(self):
        model = BigramLanguageModel(3).fit([[], [0, 1]])
        assert model.is_fitted


class TestQueries:
    def test_top_successors_sorted(self, fitted_model):
        successors = fitted_model.top_successors(0, k=2)
        assert len(successors) == 2
        assert successors[0][1] >= successors[1][1]

    def test_top_successors_all_when_k_none(self, fitted_model):
        assert len(fitted_model.top_successors(0)) == 4

    def test_top_successors_rejects_bad_k(self, fitted_model):
        with pytest.raises(ValueError):
            fitted_model.top_successors(0, k=0)

    def test_sentence_log_prob_additive(self, fitted_model):
        expected = fitted_model.log_prob(2, START_CONTEXT) + fitted_model.log_prob(0, 2)
        assert fitted_model.sentence_log_prob([2, 0]) == pytest.approx(expected)

    def test_sentence_log_prob_empty(self, fitted_model):
        assert fitted_model.sentence_log_prob([]) == 0.0

    def test_perplexity_lower_for_likely_corpus(self, fitted_model):
        likely = [[2, 0, 1]] * 5
        unlikely = [[3, 3, 3]] * 5
        assert fitted_model.perplexity(likely) < fitted_model.perplexity(unlikely)

    def test_perplexity_rejects_empty(self, fitted_model):
        with pytest.raises(ValueError):
            fitted_model.perplexity([[]])


class TestFromWordSentences:
    def test_builds_and_fits(self):
        vocab = {"a": 0, "b": 1}
        model = BigramLanguageModel.from_word_sentences(
            [["a", "b"], ["a", "a"]], vocab
        )
        assert model.is_fitted
        assert model.n_words == 2

    def test_skips_oov_words(self):
        vocab = {"a": 0, "b": 1}
        model = BigramLanguageModel.from_word_sentences([["a", "zzz", "b"]], vocab)
        assert model.is_fitted
