"""Tests for the decoding graph."""

import numpy as np
import pytest

from repro.asr.hmm import DecodingGraph
from repro.asr.language_model import START_CONTEXT, BigramLanguageModel
from repro.asr.lexicon import Lexicon


@pytest.fixture()
def graph():
    lexicon = Lexicon(["bado", "kine", "losu"])
    model = BigramLanguageModel(n_words=3)
    model.fit([[0, 1, 2], [0, 1], [2, 0, 1]])
    return DecodingGraph(lexicon, model, lm_weight=1.0, word_insertion_penalty=0.5)


class TestConstruction:
    def test_rejects_unfitted_language_model(self):
        lexicon = Lexicon(["bado"])
        with pytest.raises(ValueError):
            DecodingGraph(lexicon, BigramLanguageModel(n_words=1))

    def test_rejects_vocabulary_mismatch(self):
        lexicon = Lexicon(["bado", "kine"])
        model = BigramLanguageModel(n_words=3)
        model.fit([[0, 1, 2]])
        with pytest.raises(ValueError):
            DecodingGraph(lexicon, model)

    def test_rejects_negative_lm_weight(self):
        lexicon = Lexicon(["bado"])
        model = BigramLanguageModel(n_words=1)
        model.fit([[0]])
        with pytest.raises(ValueError):
            DecodingGraph(lexicon, model, lm_weight=-1.0)


class TestTopology:
    def test_word_lengths(self, graph):
        assert graph.word_length(0) == len(graph.lexicon.pronunciation("bado"))

    def test_final_position(self, graph):
        last = graph.word_length(0) - 1
        assert graph.is_final_position(0, last)
        assert not graph.is_final_position(0, 0)

    def test_first_phone_ids_align(self, graph):
        for word_id in range(graph.n_words):
            assert graph.first_phone_ids[word_id] == graph.phones_of(word_id)[0]

    def test_estimated_states_positive(self, graph):
        assert graph.estimated_states() >= graph.n_words


class TestLanguageModelQueries:
    def test_word_exit_score_includes_penalty(self, graph):
        raw_lm = graph.language_model.log_prob(1, 0)
        assert graph.word_exit_score(0, 1) == pytest.approx(raw_lm - 0.5)

    def test_successors_sorted_and_limited(self, graph):
        arcs = graph.successors(0, breadth=2)
        assert len(arcs) == 2
        assert arcs[0].lm_log_prob >= arcs[1].lm_log_prob

    def test_successors_cached(self, graph):
        assert graph.successors(0, breadth=2) is graph.successors(0, breadth=2)

    def test_entry_score_vector_matches_scalar(self, graph):
        vector = graph.entry_score_vector(0)
        for word_id in range(graph.n_words):
            assert vector[word_id] == pytest.approx(graph.word_exit_score(0, word_id))

    def test_entry_score_vector_start_context(self, graph):
        vector = graph.entry_score_vector(START_CONTEXT)
        assert vector.shape == (graph.n_words,)

    def test_sentence_lm_score_scales_with_weight(self):
        lexicon = Lexicon(["bado", "kine"])
        model = BigramLanguageModel(n_words=2)
        model.fit([[0, 1], [0, 1]])
        light = DecodingGraph(lexicon, model, lm_weight=0.5)
        heavy = DecodingGraph(lexicon, model, lm_weight=2.0)
        assert heavy.sentence_lm_score([0, 1]) == pytest.approx(
            4 * light.sentence_lm_score([0, 1])
        )

    def test_transcript_word_ids(self, graph):
        assert graph.transcript_word_ids(["bado", "losu"]) == [0, 2]
