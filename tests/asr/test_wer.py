"""Tests for word error rate computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asr.wer import WerBreakdown, edit_distance, word_error_rate

words = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=0, max_size=8)


class TestEditDistance:
    def test_identical(self):
        breakdown = edit_distance(["a", "b"], ["a", "b"])
        assert breakdown.errors == 0
        assert breakdown.wer == 0.0

    def test_single_substitution(self):
        breakdown = edit_distance(["a", "x"], ["a", "b"])
        assert breakdown.substitutions == 1
        assert breakdown.deletions == 0
        assert breakdown.insertions == 0
        assert breakdown.wer == pytest.approx(0.5)

    def test_deletion(self):
        breakdown = edit_distance(["a"], ["a", "b"])
        assert breakdown.deletions == 1
        assert breakdown.wer == pytest.approx(0.5)

    def test_insertion(self):
        breakdown = edit_distance(["a", "b", "c"], ["a", "b"])
        assert breakdown.insertions == 1
        assert breakdown.wer == pytest.approx(0.5)

    def test_wer_can_exceed_one(self):
        assert word_error_rate(["x", "y", "z"], ["a"]) > 1.0

    def test_empty_reference_and_hypothesis(self):
        breakdown = edit_distance([], [])
        assert breakdown.errors == 0
        assert breakdown.wer == 0.0

    def test_empty_reference_nonempty_hypothesis(self):
        breakdown = edit_distance(["a", "b"], [])
        assert breakdown.insertions == 2
        assert breakdown.wer == 2.0

    def test_empty_hypothesis(self):
        breakdown = edit_distance([], ["a", "b", "c"])
        assert breakdown.deletions == 3
        assert breakdown.wer == 1.0


class TestWerProperties:
    @given(words, words)
    def test_breakdown_consistent_with_total(self, hyp, ref):
        breakdown = edit_distance(hyp, ref)
        assert breakdown.errors == (
            breakdown.substitutions + breakdown.deletions + breakdown.insertions
        )
        assert breakdown.errors >= abs(len(hyp) - len(ref))
        assert breakdown.errors <= max(len(hyp), len(ref))

    @given(words)
    def test_identity_is_zero(self, transcript):
        assert word_error_rate(transcript, transcript) == 0.0

    @given(words, words)
    def test_symmetry_of_total_edits(self, a, b):
        # Total edit count is symmetric even though the roles of insertions
        # and deletions swap.
        assert edit_distance(a, b).errors == edit_distance(b, a).errors

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        ab = edit_distance(a, b).errors
        bc = edit_distance(b, c).errors
        ac = edit_distance(a, c).errors
        assert ac <= ab + bc


class TestBreakdownDataclass:
    def test_zero_reference_perfect(self):
        assert WerBreakdown(0, 0, 0, 0).wer == 0.0

    def test_errors_property(self):
        assert WerBreakdown(1, 2, 3, 10).errors == 6
