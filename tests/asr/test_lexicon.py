"""Tests for the pronunciation lexicon."""

import pytest

from repro.asr.lexicon import Lexicon, PHONEME_INVENTORY


class TestLexiconConstruction:
    def test_rejects_empty_vocabulary(self):
        with pytest.raises(ValueError):
            Lexicon([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Lexicon(["ba", "ba"])

    def test_word_ids_follow_order(self):
        lex = Lexicon(["ba", "do", "ki"])
        assert lex.word_id("ba") == 0
        assert lex.word_id("ki") == 2
        assert lex.words == ("ba", "do", "ki")

    def test_contains_and_len(self):
        lex = Lexicon(["ba", "do"])
        assert "ba" in lex
        assert "zz" not in lex
        assert len(lex) == 2


class TestPronunciations:
    def test_deterministic_pronunciation(self):
        lex = Lexicon(["bado"])
        assert lex.pronunciation("bado") == ("B", "AA", "D", "OW")

    def test_digraphs_map_to_single_phone(self):
        lex = Lexicon(["bai", "lou"])
        assert lex.pronunciation("bai") == ("B", "AY")
        assert lex.pronunciation("lou") == ("L", "UW")

    def test_unknown_characters_fall_back(self):
        lex = Lexicon(["bax"])
        phones = lex.pronunciation("bax")
        assert all(p in PHONEME_INVENTORY for p in phones)

    def test_pronunciation_ids_match_inventory(self):
        lex = Lexicon(["bado", "kine"])
        for word in lex.words:
            ids = lex.pronunciation_ids(word)
            assert all(0 <= i < len(PHONEME_INVENTORY) for i in ids)

    def test_phones_of_word_id_bounds(self):
        lex = Lexicon(["ba"])
        with pytest.raises(IndexError):
            lex.phones_of_word_id(5)

    def test_transcript_phone_ids_concatenates(self):
        lex = Lexicon(["ba", "do"])
        flat = lex.transcript_phone_ids(["ba", "do"])
        assert flat == list(lex.pronunciation_ids("ba")) + list(
            lex.pronunciation_ids("do")
        )

    def test_average_pronunciation_length(self):
        lex = Lexicon(["ba", "bado"])
        assert lex.average_pronunciation_length() == pytest.approx(3.0)

    def test_distinct_words_distinct_pronunciations_mostly(self):
        lex = Lexicon(["ba", "bo", "bi", "da", "do"])
        prons = {lex.pronunciation(w) for w in lex.words}
        assert len(prons) == 5
