"""The tentpole guarantee: tracing is opt-in and digest-neutral.

With no collector attached the engines run the exact code paths they
ran before this subsystem existed; with one attached the *report*
digests (and control logs) must still be bit-identical — the trace
gets its own digest, pinned separately in ``test_trace_goldens.py``.

The fast tier checks three representative scenarios under both
engines; the slow tier sweeps every canonical and chaos scenario and
the multi-region runner.
"""

import pytest

from repro.obs import TraceCollector
from repro.service.simulation import (
    canonical_scenarios,
    chaos_scenarios,
    run_scenario,
)

FAST_SCENARIOS = ("baseline", "gray-failure", "node-crash")
ENGINES = ("legacy", "columnar")


def _spec(name):
    scenarios = dict(canonical_scenarios())
    scenarios.update(chaos_scenarios())
    return scenarios[name]


def _assert_neutral(name, toy, engine):
    spec = _spec(name)
    off = run_scenario(spec, toy, engine=engine)
    collector = TraceCollector()
    on = run_scenario(spec, toy, engine=engine, trace=collector)
    assert on.digest() == off.digest(), (
        f"attaching a trace collector changed the report digest for "
        f"{name!r} under the {engine} engine"
    )
    assert len(on.control_log) == len(off.control_log)
    assert [
        (e.time_s, e.kind, e.detail) for e in on.control_log
    ] == [(e.time_s, e.kind, e.detail) for e in off.control_log]
    assert len(collector) == len(on.records)
    return collector


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", FAST_SCENARIOS)
def test_report_digest_is_trace_neutral(name, toy, engine):
    _assert_neutral(name, toy, engine)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", FAST_SCENARIOS)
def test_trace_digest_is_stable_across_runs(name, toy, engine):
    first = _assert_neutral(name, toy, engine)
    second = _assert_neutral(name, toy, engine)
    assert first.digest() == second.digest()


@pytest.mark.slow
@pytest.mark.parametrize("engine", ENGINES)
def test_full_scenario_sweep_is_trace_neutral(toy, engine):
    scenarios = dict(canonical_scenarios())
    scenarios.update(chaos_scenarios())
    for name in sorted(scenarios):
        _assert_neutral(name, toy, engine)


def test_fault_scenario_traces_are_engine_invariant(toy):
    """Fault schedules force the columnar engine's legacy fallback, so
    both engine settings record the identical rich trace stream."""
    legacy = _assert_neutral("gray-failure", toy, "legacy")
    columnar = _assert_neutral("gray-failure", toy, "columnar")
    assert legacy.digest() == columnar.digest()


def test_multi_region_report_is_trace_neutral(toy):
    from repro.service.regions import (
        MultiRegionSpec,
        RegionSpec,
        run_multi_region,
    )
    from repro.service.simulation import (
        NodeCrash,
        PoissonArrivals,
        ScenarioSpec,
    )
    from repro.service.simulation.scenarios import _tiered_configuration

    def _scenario(name, **overrides):
        defaults = dict(
            name=name,
            arrivals=PoissonArrivals(4.0),
            n_requests=40,
            pools={"fast": 1, "slow": 1},
            configuration=_tiered_configuration(),
        )
        defaults.update(overrides)
        return ScenarioSpec(**defaults)

    crash = NodeCrash(at_s=2.0, version="fast", node_index=0, recover_at_s=6.0)
    spec = MultiRegionSpec(
        name="failover",
        regions=(
            RegionSpec(name="us", scenario=_scenario("s-us", faults=(crash,))),
            RegionSpec(name="eu", scenario=_scenario("s-eu")),
        ),
        link_latency_s=0.1,
        seed=21,
    )
    off = run_multi_region(spec, toy)
    sink = TraceCollector()
    on = run_multi_region(spec, toy, trace=sink)
    assert on.digest() == off.digest()
    assert len(sink) == 80

    # Parallel shards merge to the identical trace stream.
    parallel_sink = TraceCollector()
    run_multi_region(spec, toy, parallel=2, trace=parallel_sink)
    assert parallel_sink.digest() == sink.digest()

    # Failover traffic carries the hop span linking home and target.
    hops = [
        t
        for t in sink.traces
        if any(s.name == "failover-hop" for s in t.spans)
    ]
    assert hops, "crash scenario should fail traffic over"
    for trace in hops:
        hop = next(s for s in trace.spans if s.name == "failover-hop")
        assert hop.attrs["home"] == trace.root.attrs["home_region"]
        assert hop.attrs["target"] == trace.root.attrs["served_region"]
        assert trace.root.attrs["region"] == hop.attrs["target"]
