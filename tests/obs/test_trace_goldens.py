"""Golden trace digests: the trace layer's own regression pin.

Report digests are pinned in ``tests/service/golden``; these goldens
pin the *trace* stream for three canonical runs.  Trace shape depends
on the engine (rich live recording vs coarse columnar reconstruction),
so each golden pins its engine explicitly — fault scenarios fall back
to the legacy loop under either setting and are engine-invariant,
while the healthy baseline is pinned under the default columnar
engine's coarse reconstruction.

Regenerate after an intentional trace-shape change::

    PYTHONPATH=src python -m pytest tests/obs/test_trace_goldens.py \
        --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.obs import TraceCollector, aggregate_breakdown
from repro.service.simulation import (
    canonical_scenarios,
    chaos_scenarios,
    run_scenario,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: ``(scenario, engine)`` pairs pinned to trace digests.
GOLDEN_TRACES = (
    ("baseline", "columnar"),
    ("node-crash", "legacy"),
    ("gray-failure", "legacy"),
)


def _spec(name):
    scenarios = dict(canonical_scenarios())
    scenarios.update(chaos_scenarios())
    return scenarios[name]


def _payload(name, engine, collector):
    outcomes = {}
    for trace in collector.traces:
        outcomes[trace.outcome] = outcomes.get(trace.outcome, 0) + 1
    classes = {
        cls: row["count"]
        for cls, row in aggregate_breakdown(collector).items()
    }
    return {
        "scenario": name,
        "engine": engine,
        "digest": collector.digest(),
        "headline": {
            "n_traces": len(collector),
            "n_run_events": len(collector.run_events),
            "outcomes": outcomes,
            "classes": classes,
        },
    }


@pytest.mark.parametrize("name,engine", GOLDEN_TRACES)
def test_golden_trace_digest(name, engine, toy, update_golden):
    collector = TraceCollector()
    run_scenario(_spec(name), toy, engine=engine, trace=collector)
    payload = _payload(name, engine, collector)
    path = GOLDEN_DIR / f"{name}-{engine}.json"

    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return

    assert path.exists(), (
        f"golden trace file {path} is missing; generate it with "
        "`pytest tests/obs/test_trace_goldens.py --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert payload["digest"] == golden["digest"], (
        f"trace digest for {name!r} ({engine}) changed: the recorded span "
        "stream differs from the pinned golden.  If the change is "
        "intentional, regenerate with --update-golden.\n"
        f"golden headline: {golden['headline']}\n"
        f"current headline: {payload['headline']}"
    )
    assert payload["headline"] == golden["headline"]
