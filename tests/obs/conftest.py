"""Fixtures for the observability suite.

Deliberately **no** autouse engine matrix here: trace *shapes* differ
by engine (the legacy loop records rich per-attempt spans live, the
columnar engine reconstructs coarse trees post hoc), so every test in
this directory pins its engine explicitly instead of inheriting the
``sim_engine`` doubling.
"""

import pytest

from repro.service.simulation.scenarios import scenario_measurements


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()
