"""Gateway trace wiring: tickets resolve to span trees, sync and deferred."""

import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import SequentialPolicy, SingleVersionPolicy
from repro.core.router import RoutingRuleTable, TierRouter
from repro.obs import TraceCollector
from repro.service.cluster import ClusterDeployment, NodePool
from repro.service.gateway import DirectBackend, SimulatedBackend, TierGateway
from repro.service.instances import get_instance_type
from repro.service.node import CallableVersion, VersionResult
from repro.service.request import Objective, ServiceRequest
from repro.service.simulation import canonical_scenarios


def _version(name, compute_seconds, confidence):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version=name,
            output=f"{name}({payload})",
            error=None,
            confidence=confidence,
            compute_seconds=compute_seconds,
        )

    return CallableVersion(name, handler)


def _cluster():
    instance = get_instance_type("cpu.medium")
    return ClusterDeployment(
        {
            "fast": NodePool(_version("fast", 0.1, 0.9), instance),
            "slow": NodePool(_version("slow", 0.5, 0.95), instance),
        }
    )


def _router():
    baseline = EnsembleConfiguration("cfg_base", SingleVersionPolicy("slow"))
    seq = EnsembleConfiguration(
        "cfg_seq", SequentialPolicy("fast", "slow", 0.5)
    )
    table = RoutingRuleTable(
        objective=Objective.RESPONSE_TIME,
        baseline=baseline,
        rules={0.05: seq},
    )
    return TierRouter({Objective.RESPONSE_TIME: table})


class TestSynchronousGateway:
    def test_each_submission_records_a_trace(self):
        collector = TraceCollector()
        gateway = TierGateway(
            DirectBackend(_cluster()), router=_router(), trace=collector
        )
        ticket = gateway.submit(
            ServiceRequest(request_id="q1", payload="p", tolerance=0.05)
        )
        assert ticket.ok
        trace = gateway.trace_for(ticket)
        assert trace is not None
        assert trace.root.status == "ok"
        assert trace.spans[0].name == "request"
        assert any(s.name == "leg" for s in trace.spans)

    def test_pseudo_clock_orders_submissions(self):
        collector = TraceCollector()
        gateway = TierGateway(
            DirectBackend(_cluster()), router=_router(), trace=collector
        )
        for i in range(3):
            gateway.submit(
                ServiceRequest(
                    request_id=f"q{i}", payload="p", tolerance=0.05
                )
            )
        assert collector.arrival_times() == [0.0, 1.0, 2.0]

    def test_no_collector_records_nothing(self):
        gateway = TierGateway(DirectBackend(_cluster()), router=_router())
        ticket = gateway.submit(
            ServiceRequest(request_id="q1", payload="p", tolerance=0.05)
        )
        assert gateway.trace_for(ticket) is None


class TestSimulatedGateway:
    @pytest.mark.parametrize("engine", ("legacy", "columnar"))
    def test_drained_session_fills_the_collector(self, toy, engine):
        spec = canonical_scenarios()["baseline"]
        collector = TraceCollector()
        backend = SimulatedBackend.from_scenario(spec, toy, engine=engine)
        gateway = TierGateway(
            backend, configuration=spec.configuration, trace=collector
        )
        tickets = [
            gateway.submit(
                ServiceRequest(
                    request_id=f"g{i}",
                    payload=toy.request_ids[i % len(toy.request_ids)],
                    tolerance=0.05,
                ),
                at_time=0.05 * i,
            )
            for i in range(10)
        ]
        gateway.drain()
        assert len(collector) == 10
        for ticket in tickets:
            trace = gateway.trace_for(ticket)
            assert trace is not None
            assert trace.spans[0].name == "request"

    def test_report_digest_is_unchanged_by_tracing(self, toy):
        spec = canonical_scenarios()["baseline"]

        def _run(trace):
            backend = SimulatedBackend.from_scenario(
                spec, toy, engine="columnar", trace=trace
            )
            gateway = TierGateway(backend, configuration=spec.configuration)
            for i in range(10):
                gateway.submit(
                    ServiceRequest(
                        request_id=f"g{i}",
                        payload=toy.request_ids[i % len(toy.request_ids)],
                        tolerance=0.05,
                    ),
                    at_time=0.05 * i,
                )
            gateway.drain()
            return backend.last_report

        off = _run(None)
        on = _run(TraceCollector())
        assert on.digest() == off.digest()
