"""Critical-path analysis: stage breakdowns, request classes, tail blame."""

import pytest

from repro.obs import (
    Span,
    Trace,
    TraceCollector,
    aggregate_breakdown,
    breakdown,
    format_breakdown_table,
    request_class,
    tail_attribution,
)


def _fast(request_id, *, arrival=0.0, queue=0.1, leg=0.5, retries=0):
    spans = [
        Span(
            name="request",
            start_s=arrival,
            end_s=arrival + queue + leg,
            attrs={"tier": 0.05, "escalated": False, "retries": retries},
        ),
        Span(name="queue-wait", start_s=arrival, end_s=arrival + queue),
        Span(
            name="leg",
            start_s=arrival + queue,
            end_s=arrival + queue + leg,
            attrs={"version": "fast", "leg": "fast"},
        ),
    ]
    return Trace(request_id=request_id, spans=spans)


def _escalated(request_id, *, arrival=0.0):
    spans = [
        Span(
            name="request",
            start_s=arrival,
            end_s=arrival + 2.0,
            attrs={"tier": 0.05, "escalated": True, "retries": 0},
        ),
        Span(name="queue-wait", start_s=arrival, end_s=arrival + 0.1),
        Span(
            name="leg",
            start_s=arrival + 0.1,
            end_s=arrival + 0.4,
            attrs={"version": "fast", "leg": "fast"},
        ),
        Span(
            name="escalate",
            start_s=arrival + 0.4,
            end_s=arrival + 2.0,
            attrs={"version": "slow", "leg": "accurate"},
        ),
    ]
    return Trace(request_id=request_id, spans=spans)


def _shed(request_id, *, arrival=0.0):
    return Trace(
        request_id=request_id,
        spans=[
            Span(
                name="request",
                start_s=arrival,
                end_s=arrival,
                status="shed",
                attrs={"tier": 0.05, "escalated": False, "retries": 0},
            )
        ],
    )


class TestBreakdown:
    def test_stage_seconds_sum_per_stage(self):
        stages = breakdown(_escalated("r1"))
        assert stages["queue-wait"] == pytest.approx(0.1)
        assert stages["leg-fast"] == pytest.approx(0.3)
        assert stages["leg-accurate"] == pytest.approx(1.6)

    def test_failover_hop_uses_extra_latency(self):
        trace = _fast("r1")
        trace.spans.append(
            Span(
                name="failover-hop",
                start_s=0.0,
                end_s=0.0,
                attrs={"home": "us", "target": "eu", "extra_latency_s": 0.2},
            )
        )
        assert breakdown(trace)["failover-hop"] == pytest.approx(0.2)


class TestRequestClass:
    def test_basic_classes(self):
        assert request_class(_fast("r")) == "fast"
        assert request_class(_escalated("r")) == "escalated"
        assert request_class(_shed("r")) == "shed"

    def test_retry_suffix_and_failover_prefix(self):
        retried = _fast("r", retries=2)
        assert request_class(retried) == "fast+retry"
        hopped = _fast("r2")
        hopped.root.attrs["home_region"] = "us"
        assert request_class(hopped) == "failover:fast"


class TestAggregate:
    def test_classes_sort_by_count_then_name(self):
        collector = TraceCollector()
        for i in range(3):
            collector.add_trace(_fast(f"f{i}", arrival=float(i)))
        collector.add_trace(_escalated("e0", arrival=5.0))
        agg = aggregate_breakdown(collector)
        assert list(agg) == ["fast", "escalated"]
        assert agg["fast"]["count"] == 3
        assert agg["fast"]["dominant"] == "leg-fast"
        assert agg["escalated"]["dominant"] == "leg-accurate"

    def test_table_renders_every_class(self):
        collector = TraceCollector()
        collector.add_trace(_fast("f0"))
        collector.add_trace(_escalated("e0"))
        table = format_breakdown_table(aggregate_breakdown(collector))
        assert "fast" in table and "escalated" in table
        assert "dominant" in table


class TestTailAttribution:
    def test_tail_names_the_dominant_stage(self):
        collector = TraceCollector()
        for i in range(19):
            collector.add_trace(
                _fast(f"f{i}", arrival=float(i), leg=0.1 + 0.01 * i)
            )
        collector.add_trace(_escalated("e0", arrival=30.0))
        tail = tail_attribution(collector, percentile=95.0)
        assert tail["dominant"] == "leg-accurate"
        assert 1 <= tail["n_tail"] < 20
        assert 0.0 < tail["dominant_share"] <= 1.0

    def test_shed_requests_are_excluded(self):
        collector = TraceCollector()
        collector.add_trace(_fast("f0"))
        collector.add_trace(_shed("s0", arrival=1.0))
        tail = tail_attribution(collector, percentile=50.0)
        assert tail["n_total"] == 1
