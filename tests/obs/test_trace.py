"""The span model: deterministic ids, digests, and the JSONL round-trip."""

import json

import pytest

from repro.obs import Span, SpanEvent, Trace, TraceCollector
from repro.obs.trace import span_id_for, trace_id_for


def _trace(request_id="r1", *, node=None):
    root = Span(
        name="request",
        start_s=0.0,
        end_s=1.5,
        attrs={"tier": 0.05, "escalated": True, "retries": 0},
    )
    leg = Span(
        name="leg",
        start_s=0.1,
        end_s=1.5,
        attrs={"version": "fast", "leg": "fast"},
        events=[SpanEvent(0.4, "fault", "gray-slow")],
    )
    if node is not None:
        leg.attrs["node"] = node
    return Trace(request_id=request_id, spans=[root, leg])


class TestIds:
    def test_trace_id_is_a_pure_function_of_the_request_id(self):
        assert trace_id_for("load_000001") == trace_id_for("load_000001")
        assert trace_id_for("load_000001") != trace_id_for("load_000002")
        assert len(trace_id_for("x")) == 16

    def test_span_ids_depend_on_request_and_position(self):
        assert span_id_for("r", 0) != span_id_for("r", 1)
        assert span_id_for("r", 0) != span_id_for("q", 0)

    def test_seal_assigns_ids_and_parent_links(self):
        trace = _trace().seal()
        assert trace.trace_id == trace_id_for("r1")
        assert trace.spans[0].span_id == span_id_for("r1", 0)
        assert trace.spans[0].parent_id is None
        assert trace.spans[1].parent_id == trace.spans[0].span_id


class TestDigest:
    def test_digest_is_stable_across_collectors(self):
        a, b = TraceCollector(), TraceCollector()
        a.add_trace(_trace())
        b.add_trace(_trace())
        assert a.digest() == b.digest()

    def test_node_attribute_is_digest_excluded(self):
        """Node ids come from a process-global counter; two processes
        recording the same run disagree on them, so they cannot
        participate in the digest."""
        a, b = TraceCollector(), TraceCollector()
        a.add_trace(_trace(node="fast#0"))
        b.add_trace(_trace(node="fast#7"))
        assert a.digest() == b.digest()

    def test_any_other_attribute_changes_the_digest(self):
        a, b = TraceCollector(), TraceCollector()
        a.add_trace(_trace())
        changed = _trace()
        changed.spans[1].attrs["version"] = "slow"
        b.add_trace(changed)
        assert a.digest() != b.digest()

    def test_run_events_participate(self):
        a, b = TraceCollector(), TraceCollector()
        a.add_run_event(1.0, "fault:gray", "detail")
        b.add_run_event(1.0, "fault:gray", "other")
        assert a.digest() != b.digest()


class TestJsonlRoundTrip:
    def test_export_load_preserves_everything(self, tmp_path):
        collector = TraceCollector()
        collector.add_trace(_trace("r1"))
        collector.add_trace(_trace("r2"))
        collector.add_run_event(2.0, "control:shed", "over budget", "us")
        path = tmp_path / "run.jsonl"
        collector.export_jsonl(path)
        loaded = TraceCollector.load_jsonl(path)
        assert loaded.digest() == collector.digest()
        assert len(loaded) == 2
        assert loaded.run_events == collector.run_events
        assert loaded.trace_for("r2").root.attrs["tier"] == 0.05

    def test_truncated_file_is_rejected(self, tmp_path):
        collector = TraceCollector()
        collector.add_trace(_trace("r1"))
        collector.add_trace(_trace("r2"))
        path = tmp_path / "run.jsonl"
        collector.export_jsonl(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="digest mismatch"):
            TraceCollector.load_jsonl(path)

    def test_bad_header_is_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="bad header"):
            TraceCollector.load_jsonl(path)


class TestMetricsAndReplay:
    def test_counters(self):
        collector = TraceCollector()
        collector.add_trace(_trace("r1"))
        shed = Trace(
            request_id="r2",
            spans=[Span(name="request", start_s=0.5, end_s=0.5, status="shed")],
        )
        collector.add_trace(shed)
        metrics = collector.metrics()
        assert metrics["trace.requests_total"] == 2.0
        assert metrics["trace.spans_completed"] == 3.0
        assert metrics["trace.outcome.ok"] == 1.0
        assert metrics["trace.outcome.shed"] == 1.0
        assert metrics["trace.spans_open"] == 0.0

    def test_arrival_times_are_sorted_root_starts(self):
        collector = TraceCollector()
        late = _trace("r-late")
        for span in late.spans:
            span.start_s += 3.0
            span.end_s += 3.0
        collector.add_trace(late)
        collector.add_trace(_trace("r-early"))
        assert collector.arrival_times() == [0.0, 3.0]

    def test_to_arrivals_replays_the_stream(self):
        import numpy as np

        collector = TraceCollector()
        collector.add_trace(_trace("r1"))
        arrivals = collector.to_arrivals()
        times = arrivals.times(1, np.random.default_rng(0))
        assert list(times) == [0.0]
