"""Structured logging: silent by default, rate-limited, reversible."""

import logging

from repro.obs.log import (
    RateLimitedLogger,
    disable,
    enable,
    get_logger,
    get_rate_limited,
)


class TestDefaults:
    def test_silent_by_default(self, capsys):
        get_logger("test.defaults").warning("nobody should see this")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_namespaced_under_repro(self):
        assert get_logger("x.y").name == "repro.x.y"
        assert get_rate_limited("x.y").logger.name == "repro.x.y"


class TestRateLimiting:
    def test_first_n_then_every_kth(self, caplog):
        limited = RateLimitedLogger(
            get_logger("test.rate"), first=2, every=3
        )
        with caplog.at_level(logging.INFO, logger="repro.test.rate"):
            for _ in range(9):
                limited.info("event %d happened", 1)
        # occurrences 1, 2 pass the "first" budget; then 3, 6, 9.
        assert len(caplog.records) == 5

    def test_rate_limited_messages_carry_the_count(self, caplog):
        limited = RateLimitedLogger(
            get_logger("test.count"), first=1, every=2
        )
        with caplog.at_level(logging.INFO, logger="repro.test.count"):
            limited.info("thing")
            limited.info("thing")
        assert "rate-limited" in caplog.records[-1].getMessage()

    def test_distinct_templates_have_distinct_budgets(self, caplog):
        limited = RateLimitedLogger(
            get_logger("test.keys"), first=1, every=100
        )
        with caplog.at_level(logging.INFO, logger="repro.test.keys"):
            limited.info("alpha %s", "a")
            limited.info("beta %s", "b")
        assert len(caplog.records) == 2

    def test_reset_restores_the_budget(self, caplog):
        limited = RateLimitedLogger(
            get_logger("test.reset"), first=1, every=100
        )
        with caplog.at_level(logging.INFO, logger="repro.test.reset"):
            limited.info("thing")
            limited.info("thing")
            limited.reset()
            limited.info("thing")
        assert len(caplog.records) == 2


class TestEnableDisable:
    def test_enable_then_disable_round_trips(self, capsys):
        try:
            enable(logging.INFO)
            get_logger("test.enabled").info("visible line")
            captured = capsys.readouterr()
            assert "visible line" in captured.err
        finally:
            disable()
        get_logger("test.enabled").info("hidden again")
        captured = capsys.readouterr()
        assert captured.err == ""

    def test_enable_is_idempotent(self):
        try:
            enable(logging.INFO)
            enable(logging.DEBUG)
            root = logging.getLogger("repro")
            streams = [
                h
                for h in root.handlers
                if not isinstance(h, logging.NullHandler)
            ]
            assert len(streams) == 1
        finally:
            disable()
