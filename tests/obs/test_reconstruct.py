"""Columnar post-hoc reconstruction: vectorized == per-record, coarse shape."""

import pytest

from repro.obs import TraceCollector, trace_from_record, traces_from_report
from repro.obs.reconstruct import _from_record
from repro.service.simulation import canonical_scenarios, run_scenario


class _RecordsOnly:
    """A report whose records lost their columns (forces the scalar path)."""

    def __init__(self, report):
        self.records = list(report.records)


@pytest.fixture(scope="module")
def columnar_report(toy):
    spec = canonical_scenarios()["baseline"]
    report = run_scenario(spec, toy, engine="columnar")
    assert report.engine_used == "columnar"
    return report


def _digest_of(traces):
    collector = TraceCollector()
    for trace in traces:
        collector.add_trace(trace)
    return collector.digest()


class TestPathEquivalence:
    def test_vectorized_and_scalar_paths_agree(self, columnar_report):
        vectorized = traces_from_report(columnar_report)
        scalar = traces_from_report(_RecordsOnly(columnar_report))
        assert _digest_of(vectorized) == _digest_of(scalar)
        assert len(vectorized) == len(scalar)

    def test_single_record_entry_point_matches(self, columnar_report):
        record = columnar_report.records[0]
        assert (
            _digest_of([trace_from_record(record)])
            == _digest_of([_from_record(record)])
        )


class TestCoarseShape:
    def test_every_request_gets_a_tree(self, columnar_report):
        traces = traces_from_report(columnar_report)
        assert len(traces) == len(columnar_report.records)
        by_id = {t.request_id: t for t in traces}
        for record in columnar_report.records:
            trace = by_id[record.request_id]
            assert trace.root.name == "request"
            assert trace.root.start_s == record.arrival_s
            assert trace.root.end_s == record.finished_s

    def test_escalated_requests_grow_an_escalate_span(self, columnar_report):
        traces = traces_from_report(columnar_report)
        by_id = {t.request_id: t for t in traces}
        escalated = [r for r in columnar_report.records if r.escalated]
        assert escalated, "baseline scenario should escalate some requests"
        for record in escalated:
            names = [s.name for s in by_id[record.request_id].spans]
            assert names == ["request", "queue-wait", "leg", "escalate"]

    def test_leg_windows_stay_inside_the_request(self, columnar_report):
        for trace in traces_from_report(columnar_report):
            root = trace.root
            for span in trace.spans[1:]:
                assert span.start_s >= root.start_s - 1e-12
                assert span.end_s <= root.end_s + 1e-12
