"""Tests for repro.stats.resampling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.resampling import (
    bootstrap_indices,
    bootstrap_statistic,
    kfold_indices,
    subsample_indices,
)


class TestBootstrapIndices:
    def test_range_and_size(self, rng):
        idx = bootstrap_indices(10, rng=rng)
        assert idx.shape == (10,)
        assert idx.min() >= 0 and idx.max() < 10

    def test_custom_size(self, rng):
        assert bootstrap_indices(10, size=3, rng=rng).shape == (3,)

    def test_rejects_bad_population(self, rng):
        with pytest.raises(ValueError):
            bootstrap_indices(0, rng=rng)

    def test_rejects_bad_size(self, rng):
        with pytest.raises(ValueError):
            bootstrap_indices(5, size=0, rng=rng)


class TestSubsampleIndices:
    def test_no_replacement(self, rng):
        idx = subsample_indices(20, 10, rng=rng)
        assert len(set(idx.tolist())) == 10

    def test_size_clipped_to_population(self, rng):
        idx = subsample_indices(5, 50, rng=rng)
        assert idx.shape == (5,)

    def test_size_floor_of_one(self, rng):
        assert subsample_indices(5, 0, rng=rng).shape == (1,)

    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=100))
    def test_always_within_population(self, n, size):
        idx = subsample_indices(n, size, rng=np.random.default_rng(0))
        assert idx.min() >= 0 and idx.max() < n


class TestBootstrapStatistic:
    def test_mean_statistic_centred(self, rng):
        values = np.arange(100, dtype=float)
        stats = bootstrap_statistic(values, np.mean, trials=200, rng=rng)
        assert stats.shape == (200,)
        assert abs(stats.mean() - values.mean()) < 2.0

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            bootstrap_statistic([], np.mean, trials=10, rng=rng)

    def test_rejects_bad_trials(self, rng):
        with pytest.raises(ValueError):
            bootstrap_statistic([1.0], np.mean, trials=0, rng=rng)


class TestKfoldIndices:
    def test_partition_properties(self, rng):
        folds = kfold_indices(23, 5, rng=rng)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))
        for train, test in folds:
            assert set(train.tolist()).isdisjoint(set(test.tolist()))
            assert len(train) + len(test) == 23

    def test_deterministic_without_rng(self):
        folds_a = kfold_indices(10, 2)
        folds_b = kfold_indices(10, 2)
        for (tr_a, te_a), (tr_b, te_b) in zip(folds_a, folds_b):
            assert np.array_equal(tr_a, tr_b)
            assert np.array_equal(te_a, te_b)

    def test_rejects_too_many_folds(self):
        with pytest.raises(ValueError):
            kfold_indices(3, 4)

    def test_rejects_single_fold(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)

    @given(st.integers(min_value=4, max_value=60), st.integers(min_value=2, max_value=4))
    def test_fold_sizes_balanced(self, n, folds):
        pairs = kfold_indices(n, folds, rng=np.random.default_rng(1))
        sizes = [len(test) for _, test in pairs]
        assert max(sizes) - min(sizes) <= 1
