"""Tests for repro.stats.confidence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.confidence import (
    ConfidenceTest,
    normal_quantile,
    spread_is_confident,
    zscores,
)


class TestNormalQuantile:
    def test_known_values(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.999) == pytest.approx(3.0902, abs=1e-3)

    def test_monotone(self):
        assert normal_quantile(0.99) < normal_quantile(0.999)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            normal_quantile(bad)


class TestZscores:
    def test_standardisation(self):
        z = zscores([1.0, 2.0, 3.0])
        assert z.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.std() == pytest.approx(1.0)

    def test_constant_sample_maps_to_zeros(self):
        assert np.allclose(zscores([5.0, 5.0, 5.0]), 0.0)

    def test_empty(self):
        assert zscores([]).size == 0


class TestSpreadIsConfident:
    def test_single_value_never_confident(self):
        assert not spread_is_confident([1.0], 0.9)

    def test_wide_spread_is_confident_at_moderate_confidence(self):
        # With ~68 % confidence the quantile is ~0.47 sigma, which a widely
        # spread sample easily straddles.
        values = list(np.linspace(0.0, 10.0, 30))
        assert spread_is_confident(values, 0.68)

    def test_constant_sample_needs_enough_trials(self):
        assert not spread_is_confident([2.0, 2.0], 0.999)
        assert spread_is_confident([2.0] * 40, 0.999)

    @given(st.floats(min_value=0.9, max_value=0.999))
    def test_two_identical_values_not_confident_at_high_confidence(self, confidence):
        # A constant two-trial sample cannot certify a high-confidence bound.
        assert not spread_is_confident([1.0, 1.0], confidence)


class TestConfidenceTest:
    def test_requires_min_trials(self):
        test = ConfidenceTest(confidence=0.9, min_trials=5, max_trials=50)
        assert not test.is_satisfied([1.0, 2.0, 3.0])

    def test_max_trials_forces_satisfaction(self):
        test = ConfidenceTest(confidence=0.999, min_trials=2, max_trials=5)
        assert test.is_satisfied([1.0, 1.1, 1.2, 1.3, 1.4])

    def test_all_satisfied_requires_every_column(self):
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=4)
        enough = [1.0, 2.0, 3.0, 4.0]
        assert test.all_satisfied([enough, enough])
        assert not test.all_satisfied([enough, [1.0]])

    def test_all_satisfied_empty_columns_is_false(self):
        test = ConfidenceTest()
        assert not test.all_satisfied([])

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceTest(confidence=1.5)
        with pytest.raises(ValueError):
            ConfidenceTest(min_trials=1)
        with pytest.raises(ValueError):
            ConfidenceTest(min_trials=10, max_trials=5)


class TestDegenerateSamples:
    """Edge cases: n=1 trials and zero-variance (constant) prefixes.

    These are the inputs where a naive implementation divides by zero
    (``std == 0``) or trusts a single observation; every public entry
    point must handle them without warnings and agree with the scalar
    rules.
    """

    def test_single_trial_is_never_confident(self):
        assert not spread_is_confident([3.14], 0.9)
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=50)
        assert not test.is_satisfied([3.14])
        assert test.first_satisfied(([3.14],)) is None

    def test_single_trial_zero_value(self):
        # zero mean AND zero spread: both normalisations degenerate
        assert np.allclose(zscores([0.0]), 0.0)
        assert not spread_is_confident([0.0], 0.999)

    def test_confidence_arbitrarily_close_to_one(self):
        # 1 - confidence underflows toward zero: the constant-sample rule
        # divides by it and must stay finite (guarded at 1e-12).
        confidence = 1.0 - 1e-13
        assert not spread_is_confident([2.0, 2.0], confidence)
        # the trial requirement is capped, so a long constant sample still
        # passes rather than demanding ~1e13 trials
        assert spread_is_confident([2.0] * 30, confidence)

    def test_zero_variance_prefix_then_spread(self):
        """A constant prefix must follow the constant rule, then hand over
        to the spread rule the moment variance appears."""
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=100)
        # constant rule needs ceil(1/(1-0.9)) = 10 trials; variance starts
        # at trial 8, so the constant rule never fires and the spread rule
        # decides.
        column = np.array([5.0] * 7 + [5.0, 25.0, -15.0, 5.1, 4.9])
        naive = TestFirstSatisfied._naive(test, (column,), 1)
        assert test.first_satisfied((column,)) == naive

    def test_zero_variance_prefix_satisfies_constant_rule(self):
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=100)
        column = np.full(15, 7.5)
        # ceil(1 / (1 - 0.9)) constant trials satisfy the test; in float
        # arithmetic 1 / (1 - 0.9) lands just above 10, so the rule
        # demands 11.
        assert test.first_satisfied((column,)) == 11
        assert test.first_satisfied((column[:10],)) is None

    def test_near_zero_variance_prefix_matches_scalar(self):
        """Variance within float error of zero must not misclassify."""
        test = ConfidenceTest(confidence=0.999, min_trials=2, max_trials=100)
        base = 1e9
        column = np.full(40, base)
        column[20:] += 1e-7  # far below the running-stats error bound
        naive = TestFirstSatisfied._naive(test, (column,), 1)
        assert test.first_satisfied((column,)) == naive

    def test_mixed_constant_and_spread_columns(self):
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=100)
        constant = np.zeros(20)
        spread = np.concatenate([[0.0, 10.0, -10.0], np.full(17, 0.1)])
        naive = TestFirstSatisfied._naive(test, (constant, spread), 1)
        assert test.first_satisfied((constant, spread)) == naive


class TestFirstSatisfied:
    """The vectorized prefix scan must agree with the sequential loop."""

    @staticmethod
    def _naive(test, columns, start):
        length = len(columns[0])
        for t in range(start, length + 1):
            if test.all_satisfied([column[:t] for column in columns]):
                return t
        return None

    def test_matches_sequential_loop_on_random_columns(self):
        rng = np.random.default_rng(2024)
        for _ in range(300):
            length = int(rng.integers(1, 70))
            test = ConfidenceTest(
                confidence=float(rng.choice([0.9, 0.95, 0.999])),
                min_trials=int(rng.integers(2, 10)),
                max_trials=int(rng.integers(10, 60)),
            )
            columns = []
            for _ in range(int(rng.integers(1, 4))):
                kind = int(rng.integers(0, 4))
                if kind == 0:
                    column = np.zeros(length)
                elif kind == 1:
                    column = np.full(length, float(rng.normal()))
                elif kind == 2:
                    column = rng.normal(size=length) * (
                        10.0 ** float(rng.integers(-6, 6))
                    )
                else:
                    column = np.round(rng.normal(size=length), 1)
                columns.append(column)
            start = int(rng.integers(1, 5))
            assert test.first_satisfied(columns, start=start) == self._naive(
                test, columns, start
            )

    def test_constant_columns_follow_the_scalar_constant_rule(self):
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=100)
        zeros = np.zeros(40)
        # The scalar test accepts a constant sample once it has
        # ceil(1 / (1 - confidence)) = 10 trials.
        assert test.first_satisfied((zeros,)) == self._naive(test, (zeros,), 1)

    def test_start_skips_earlier_prefixes(self):
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=100)
        spread = np.array([0.0, 10.0, -10.0, 0.1, 0.2, 0.3])
        first = test.first_satisfied((spread,))
        assert first is not None
        assert test.first_satisfied((spread,), start=first + 1) == self._naive(
            test, (spread,), first + 1
        )

    def test_max_trials_prefix_always_satisfies(self):
        test = ConfidenceTest(confidence=0.999, min_trials=2, max_trials=4)
        flat = np.array([1.0, 1.1, 1.05, 1.02, 1.01])
        assert test.first_satisfied((flat,)) == 4

    def test_empty_and_mismatched_columns(self):
        test = ConfidenceTest()
        assert test.first_satisfied(()) is None
        assert test.first_satisfied((np.zeros(3),)) is None  # < min_trials
        with pytest.raises(ValueError):
            test.first_satisfied((np.zeros(3), np.zeros(4)))
