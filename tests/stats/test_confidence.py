"""Tests for repro.stats.confidence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.confidence import (
    ConfidenceTest,
    normal_quantile,
    spread_is_confident,
    zscores,
)


class TestNormalQuantile:
    def test_known_values(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.999) == pytest.approx(3.0902, abs=1e-3)

    def test_monotone(self):
        assert normal_quantile(0.99) < normal_quantile(0.999)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            normal_quantile(bad)


class TestZscores:
    def test_standardisation(self):
        z = zscores([1.0, 2.0, 3.0])
        assert z.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.std() == pytest.approx(1.0)

    def test_constant_sample_maps_to_zeros(self):
        assert np.allclose(zscores([5.0, 5.0, 5.0]), 0.0)

    def test_empty(self):
        assert zscores([]).size == 0


class TestSpreadIsConfident:
    def test_single_value_never_confident(self):
        assert not spread_is_confident([1.0], 0.9)

    def test_wide_spread_is_confident_at_moderate_confidence(self):
        # With ~68 % confidence the quantile is ~0.47 sigma, which a widely
        # spread sample easily straddles.
        values = list(np.linspace(0.0, 10.0, 30))
        assert spread_is_confident(values, 0.68)

    def test_constant_sample_needs_enough_trials(self):
        assert not spread_is_confident([2.0, 2.0], 0.999)
        assert spread_is_confident([2.0] * 40, 0.999)

    @given(st.floats(min_value=0.9, max_value=0.999))
    def test_two_identical_values_not_confident_at_high_confidence(self, confidence):
        # A constant two-trial sample cannot certify a high-confidence bound.
        assert not spread_is_confident([1.0, 1.0], confidence)


class TestConfidenceTest:
    def test_requires_min_trials(self):
        test = ConfidenceTest(confidence=0.9, min_trials=5, max_trials=50)
        assert not test.is_satisfied([1.0, 2.0, 3.0])

    def test_max_trials_forces_satisfaction(self):
        test = ConfidenceTest(confidence=0.999, min_trials=2, max_trials=5)
        assert test.is_satisfied([1.0, 1.1, 1.2, 1.3, 1.4])

    def test_all_satisfied_requires_every_column(self):
        test = ConfidenceTest(confidence=0.9, min_trials=2, max_trials=4)
        enough = [1.0, 2.0, 3.0, 4.0]
        assert test.all_satisfied([enough, enough])
        assert not test.all_satisfied([enough, [1.0]])

    def test_all_satisfied_empty_columns_is_false(self):
        test = ConfidenceTest()
        assert not test.all_satisfied([])

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceTest(confidence=1.5)
        with pytest.raises(ValueError):
            ConfidenceTest(min_trials=1)
        with pytest.raises(ValueError):
            ConfidenceTest(min_trials=10, max_trials=5)
