"""Tests for repro.stats.descriptive."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.descriptive import (
    StreamingMoments,
    geometric_mean,
    percentile,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_basic_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_round_trip(self):
        summary = summarize([5.0, 7.0])
        d = summary.as_dict()
        assert d["count"] == 2
        assert d["mean"] == pytest.approx(6.0)
        assert set(d) == {"count", "mean", "std", "min", "p50", "p90", "p99", "max"}

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_bounds_hold(self, values):
        summary = summarize(values)
        slack = 1e-6 * max(1.0, abs(summary.maximum), abs(summary.minimum))
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.minimum - slack <= summary.p50 <= summary.maximum + slack


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 120)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=30))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestStreamingMoments:
    def test_matches_numpy(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        moments = StreamingMoments()
        moments.extend(data)
        assert moments.count == len(data)
        assert moments.mean == pytest.approx(np.mean(data))
        assert moments.variance == pytest.approx(np.var(data))
        assert moments.std == pytest.approx(np.std(data))

    def test_empty_defaults(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.mean == 0.0
        assert moments.variance == 0.0

    def test_rejects_non_finite(self):
        moments = StreamingMoments()
        with pytest.raises(ValueError):
            moments.update(math.inf)

    def test_merge_equals_combined_stream(self):
        left, right = StreamingMoments(), StreamingMoments()
        left.extend([1.0, 2.0, 3.0])
        right.extend([10.0, 20.0])
        merged = left.merge(right)
        combined = StreamingMoments()
        combined.extend([1.0, 2.0, 3.0, 10.0, 20.0])
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        left = StreamingMoments()
        left.extend([2.0, 4.0])
        merged = left.merge(StreamingMoments())
        assert merged.mean == pytest.approx(3.0)

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.lists(finite_floats, min_size=1, max_size=30),
    )
    def test_merge_property(self, a, b):
        left, right = StreamingMoments(), StreamingMoments()
        left.extend(a)
        right.extend(b)
        merged = left.merge(right)
        assert merged.mean == pytest.approx(np.mean(a + b), rel=1e-9, abs=1e-9)
