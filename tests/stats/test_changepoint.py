"""Changepoint detection: injected steps flagged, noise and short series not."""

import math

import numpy as np
import pytest

from repro.stats import ConfidenceTest, detect_step, shift_zscore
from repro.stats.changepoint import Changepoint


def noise(n, rng, scale=1.0, loc=100.0):
    return loc + scale * rng.standard_normal(n)


class TestDetectStep:
    def test_injected_step_in_twenty_run_history_is_flagged(self):
        # The acceptance scenario: 20 runs, a step change injected at
        # run 12, amplitude well clear of the run-to-run noise.
        rng = np.random.default_rng(7)
        values = np.concatenate([noise(12, rng), noise(8, rng, loc=110.0)])
        cp = detect_step(values)
        assert cp is not None
        assert cp.index == 12
        assert cp.shift == pytest.approx(10.0, abs=2.0)
        assert cp.relative_shift == pytest.approx(0.1, abs=0.03)
        assert abs(cp.zscore) > 3.0

    def test_all_noise_history_is_not_flagged(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            assert detect_step(noise(20, rng)) is None, seed

    def test_downward_step_reports_negative_shift(self):
        rng = np.random.default_rng(3)
        values = np.concatenate([noise(10, rng), noise(10, rng, loc=90.0)])
        cp = detect_step(values)
        assert cp is not None
        assert cp.shift < 0
        assert cp.zscore < 0
        assert cp.relative_shift < 0

    def test_short_series_returns_none(self):
        rng = np.random.default_rng(1)
        # 9 < 2 * min_segment: too short to split.
        assert detect_step(noise(9, rng)) is None
        assert detect_step([]) is None
        assert detect_step([1.0]) is None

    def test_min_segment_bounds_the_scan(self):
        # A step at index 2 is invisible with min_segment=5...
        values = [1.0] * 2 + [2.0] * 18
        assert detect_step(values, min_segment=5) is None
        # ...but found when the scan may split earlier.
        cp = detect_step(values, min_segment=2)
        assert cp is not None and cp.index == 2

    def test_constant_series_is_not_flagged(self):
        assert detect_step([5.0] * 20) is None
        assert detect_step([0.0] * 20) is None

    def test_step_between_constant_regimes_is_infinite_z(self):
        values = [1.0] * 10 + [2.0] * 10
        cp = detect_step(values)
        assert cp is not None
        assert cp.index == 10
        assert math.isinf(cp.zscore) and cp.zscore > 0

    def test_zero_baseline_step_has_infinite_relative_shift(self):
        # The resilience metrics make this shape real: a perfectly
        # recovering system has time_to_recover_s == 0.0 run after run,
        # then a regression introduces a nonzero tail.
        values = [0.0] * 10 + [2.0] * 10
        cp = detect_step(values)
        assert cp is not None
        assert math.isinf(cp.relative_shift) and cp.relative_shift > 0

    def test_confidence_level_comes_from_the_test(self):
        # A modest shift that a loose test flags and the 99.9 % default
        # does not: the bar is the test's quantile, not a fixed band.
        rng = np.random.default_rng(11)
        values = np.concatenate([noise(10, rng), noise(10, rng, loc=101.0)])
        loose = detect_step(values, test=ConfidenceTest(confidence=0.8))
        strict = detect_step(values, test=ConfidenceTest(confidence=0.999))
        assert loose is not None
        assert strict is None

    def test_rejects_degenerate_min_segment(self):
        with pytest.raises(ValueError):
            detect_step([1.0] * 20, min_segment=1)

    def test_returns_most_significant_split(self):
        # Noise + one big step: the winning split is the step, not a
        # lucky noise split.
        rng = np.random.default_rng(5)
        values = np.concatenate([noise(8, rng), noise(12, rng, loc=150.0)])
        cp = detect_step(values)
        assert cp is not None
        assert cp.index == 8

    def test_result_is_a_changepoint(self):
        values = [1.0] * 10 + [2.0] * 10
        assert isinstance(detect_step(values), Changepoint)


class TestShiftZscore:
    def test_matches_manual_zscore(self):
        baseline = [1.0, 2.0, 3.0, 4.0, 5.0]
        z = shift_zscore(baseline, 6.0)
        arr = np.asarray(baseline)
        assert z == pytest.approx((6.0 - arr.mean()) / arr.std(ddof=1))

    def test_constant_baseline_departure_is_infinite(self):
        assert shift_zscore([2.0] * 5, 3.0) == math.inf
        assert shift_zscore([2.0] * 5, 1.0) == -math.inf

    def test_constant_baseline_match_is_zero(self):
        assert shift_zscore([2.0] * 5, 2.0) == 0.0
        assert shift_zscore([0.0] * 5, 0.0) == 0.0

    def test_zero_baseline_regression_is_infinite(self):
        # The silent-skip bug's exact shape: a metric whose baseline is
        # legitimately 0.0 must still register a regression.
        assert shift_zscore([0.0, 0.0, 0.0], 2.0) == math.inf

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            shift_zscore([1.0], 2.0)
        with pytest.raises(ValueError):
            shift_zscore([], 2.0)

    def test_float_dust_baseline_follows_constant_rule(self):
        base = 1.0
        dust = [base, base * (1 + 1e-16), base * (1 - 1e-16)]
        assert shift_zscore(dust, 2.0) == math.inf
        assert math.isfinite(shift_zscore([1.0, 1.1, 0.9], 2.0))
