"""Edge-case tests for benchmarks/history.py — the longitudinal store.

Covers the ISSUE acceptance list: empty history, single entry, mixed
smoke/full, an injected changepoint detected by the
``ConfidenceTest``-conditioned scan (and an all-noise history NOT
flagged), machine-metadata mismatch warnings — plus the gateway-export
seam that lets live sessions share the benchmark-history schema.
"""

import json

import numpy as np
import pytest

import history
from repro.stats.confidence import ConfidenceTest


MACHINE_A = {"hostname": "box-a", "platform": "linux", "python": "3", "cpu_count": 8}
MACHINE_B = {"hostname": "box-b", "platform": "linux", "python": "3", "cpu_count": 96}


def make_entry(value, *, timestamp, smoke=False, source="bench_perf",
               branch="main", machine=MACHINE_A,
               label="policy_evaluation.rows_per_s"):
    return history.entry_from_metrics(
        {label: float(value)},
        source=source,
        smoke=smoke,
        engine="columnar",
        timestamp=timestamp,
        machine=machine,
        git={"commit": "abc123", "branch": branch},
    )


class TestAppendLoadRoundtrip:
    def test_roundtrip_preserves_every_field(self, tmp_path):
        path = tmp_path / "h.jsonl"
        entry = make_entry(100.0, timestamp=1000.0, smoke=True)
        history.append_entry(entry, path)
        (loaded,) = history.load_history(path)
        assert loaded == entry

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "results" / "deep" / "h.jsonl"
        history.append_entry(make_entry(1.0, timestamp=1.0), path)
        assert path.exists()
        assert len(history.load_history(path)) == 1

    def test_record_run_flattens_and_appends(self, tmp_path):
        path = tmp_path / "h.jsonl"
        payload = {"policy_evaluation": {"rows_per_s": 123.0, "smoke": True}}
        entry = history.record_run(
            payload,
            source="bench_perf",
            smoke=True,
            path=path,
            timestamp=5.0,
            machine=MACHINE_A,
            git={"commit": "c", "branch": "main"},
        )
        assert entry.metrics == {"policy_evaluation.rows_per_s": 123.0}
        (loaded,) = history.load_history(path)
        assert loaded.metrics == entry.metrics
        assert loaded.smoke is True

    def test_entries_load_sorted_by_timestamp(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for ts in (3.0, 1.0, 2.0):
            history.append_entry(make_entry(ts, timestamp=ts), path)
        loaded = history.load_history(path)
        assert [e.timestamp for e in loaded] == [1.0, 2.0, 3.0]


class TestLoadTolerance:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert history.load_history(tmp_path / "nope.jsonl") == []

    def test_empty_file_is_empty_history(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("")
        assert history.load_history(path) == []

    def test_single_entry_history(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history.append_entry(make_entry(42.0, timestamp=1.0), path)
        (entry,) = history.load_history(path)
        assert entry.metrics["policy_evaluation.rows_per_s"] == 42.0

    def test_malformed_line_is_skipped_with_warning(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        history.append_entry(make_entry(1.0, timestamp=1.0), path)
        with path.open("a") as handle:
            handle.write('{"truncated": \n')  # crashed mid-write
        history.append_entry(make_entry(2.0, timestamp=2.0), path)
        loaded = history.load_history(path)
        assert [e.timestamp for e in loaded] == [1.0, 2.0]
        assert "malformed line" in capsys.readouterr().err

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history.append_entry(make_entry(1.0, timestamp=1.0), path)
        with path.open("a") as handle:
            handle.write("\n\n")
        history.append_entry(make_entry(2.0, timestamp=2.0), path)
        assert len(history.load_history(path)) == 2


class TestFilters:
    def seeded(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history.append_entry(make_entry(1.0, timestamp=1.0, smoke=False), path)
        history.append_entry(make_entry(2.0, timestamp=2.0, smoke=True), path)
        history.append_entry(
            make_entry(3.0, timestamp=3.0, source="bench_resilience"), path
        )
        history.append_entry(
            make_entry(4.0, timestamp=4.0, branch="feature"), path
        )
        return path

    def test_smoke_filter_separates_measurement_regimes(self, tmp_path):
        path = self.seeded(tmp_path)
        smoke = history.load_history(path, smoke=True)
        full = history.load_history(path, smoke=False)
        assert [e.timestamp for e in smoke] == [2.0]
        assert [e.timestamp for e in full] == [1.0, 3.0, 4.0]

    def test_source_filter(self, tmp_path):
        loaded = history.load_history(self.seeded(tmp_path), source="bench_resilience")
        assert [e.timestamp for e in loaded] == [3.0]

    def test_branch_filter(self, tmp_path):
        loaded = history.load_history(self.seeded(tmp_path), branch="feature")
        assert [e.timestamp for e in loaded] == [4.0]

    def test_filters_compose(self, tmp_path):
        loaded = history.load_history(
            self.seeded(tmp_path), smoke=False, branch="main"
        )
        assert [e.timestamp for e in loaded] == [1.0, 3.0]


class TestMetricSeries:
    def test_absent_labels_are_simply_missing(self, tmp_path):
        # A schema addition must not read as a changepoint: older
        # entries without the label contribute nothing, not zeros.
        entries = [
            make_entry(1.0, timestamp=1.0),
            history.entry_from_metrics(
                {"policy_evaluation.rows_per_s": 2.0, "brand.new_metric": 9.0},
                source="bench_perf",
                smoke=False,
                timestamp=2.0,
                machine=MACHINE_A,
                git={"commit": "c", "branch": "main"},
            ),
        ]
        assert history.metric_series(entries, "policy_evaluation.rows_per_s") == [1.0, 2.0]
        assert history.metric_series(entries, "brand.new_metric") == [9.0]
        assert history.metric_series(entries, "never.recorded") == []

    def test_metric_labels_union(self):
        entries = [
            make_entry(1.0, timestamp=1.0, label="b.y"),
            make_entry(2.0, timestamp=2.0, label="a.x"),
        ]
        assert history.metric_labels(entries) == ["a.x", "b.y"]


class TestFlattenMetrics:
    def test_nested_dicts_become_dotted_labels(self):
        flat = history.flatten_metrics(
            {"control_plane": {"goodput_rps": {"spike": 5.0, "static": 7}}}
        )
        assert flat == {
            "control_plane.goodput_rps.spike": 5.0,
            "control_plane.goodput_rps.static": 7.0,
        }

    def test_smoke_tag_bools_and_strings_are_dropped(self):
        flat = history.flatten_metrics(
            {
                "resilience": {
                    "smoke": True,
                    "goodput_retention": 0.9,
                    "engine": "columnar",
                    "converged": False,
                }
            }
        )
        assert flat == {"resilience.goodput_retention": 0.9}

    def test_zero_values_are_kept(self):
        # The compare_perf silent-skip bug must not be reintroduced one
        # layer down: a 0.0 is a metric value, not an absence.
        flat = history.flatten_metrics({"resilience": {"time_to_recover_s": 0.0}})
        assert flat == {"resilience.time_to_recover_s": 0.0}


class TestEntryMetadata:
    def test_engine_defaults_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "event")
        entry = history.entry_from_metrics(
            {"a.b": 1.0}, source="bench_perf", smoke=False,
            timestamp=1.0, machine=MACHINE_A, git={"commit": "c", "branch": "m"},
        )
        assert entry.engine == "event"

    def test_engine_defaults_to_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        entry = history.entry_from_metrics(
            {"a.b": 1.0}, source="bench_perf", smoke=False,
            timestamp=1.0, machine=MACHINE_A, git={"commit": "c", "branch": "m"},
        )
        assert entry.engine == "columnar"

    def test_defaults_fill_machine_git_and_timestamp(self):
        entry = history.entry_from_metrics(
            {"a.b": 1.0}, source="bench_perf", smoke=False
        )
        assert entry.machine == history.machine_fingerprint()
        assert entry.commit and entry.branch  # real repo: non-empty
        assert entry.timestamp > 0
        assert entry.schema == history.SCHEMA_VERSION

    def test_git_metadata_in_this_repo(self):
        meta = history.git_metadata()
        assert set(meta) == {"commit", "branch"}
        assert meta["commit"] != "unknown"
        assert len(meta["commit"]) == 40

    def test_git_metadata_outside_a_repo(self, tmp_path):
        meta = history.git_metadata(cwd=tmp_path)
        assert meta == {"commit": "unknown", "branch": "unknown"}


class TestMachineMismatch:
    def test_single_machine_history_is_quiet(self):
        entries = [make_entry(i, timestamp=i) for i in range(3)]
        assert history.machine_mismatch_warnings(entries) == []
        assert history.machine_mismatch_warnings(entries, current=MACHINE_A) == []

    def test_mixed_machines_warn(self):
        entries = [
            make_entry(1.0, timestamp=1.0, machine=MACHINE_A),
            make_entry(2.0, timestamp=2.0, machine=MACHINE_B),
        ]
        (warning,) = history.machine_mismatch_warnings(entries)
        assert "2 machine fingerprints" in warning
        assert "box-a" in warning and "box-b" in warning

    def test_current_machine_absent_warns(self):
        entries = [make_entry(1.0, timestamp=1.0, machine=MACHINE_A)]
        warnings = history.machine_mismatch_warnings(entries, current=MACHINE_B)
        assert len(warnings) == 1
        assert "box-b" in warnings[0]
        assert "no entries" in warnings[0]

    def test_empty_history_never_warns(self):
        assert history.machine_mismatch_warnings([], current=MACHINE_A) == []


class TestDetectChangepoints:
    LABEL = "serving_simulator.requests_per_s"

    def entries_from(self, values):
        return [
            make_entry(v, timestamp=float(i), label=self.LABEL)
            for i, v in enumerate(values)
        ]

    def test_injected_step_in_twenty_run_history_is_flagged(self):
        # The ISSUE acceptance criterion: 20 runs, a step injected at
        # run 12, detected by the ConfidenceTest-conditioned scan.
        rng = np.random.default_rng(7)
        values = np.concatenate(
            [
                rng.normal(100.0, 1.0, size=12),
                rng.normal(110.0, 1.0, size=8),
            ]
        )
        found = history.detect_changepoints(self.entries_from(values))
        assert self.LABEL in found
        step = found[self.LABEL]
        assert step.index == 12
        assert step.shift == pytest.approx(10.0, abs=2.0)

    def test_all_noise_twenty_run_history_is_not_flagged(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            values = rng.normal(100.0, 1.0, size=20)
            found = history.detect_changepoints(self.entries_from(values))
            assert found == {}, f"seed {seed} false-positive: {found}"

    def test_short_history_cannot_flag(self):
        values = [100.0] * 4 + [200.0] * 4  # 8 < 2 * min_segment
        assert history.detect_changepoints(self.entries_from(values)) == {}

    def test_labels_argument_restricts_the_scan(self):
        values = [100.0] * 10 + [200.0] * 10
        found = history.detect_changepoints(
            self.entries_from(values), labels=["some.other_metric"]
        )
        assert found == {}

    def test_confidence_test_sets_the_bar(self):
        rng = np.random.default_rng(11)
        values = np.concatenate(
            [rng.normal(100.0, 1.0, size=10), rng.normal(101.0, 1.0, size=10)]
        )
        entries = self.entries_from(values)
        loose = history.detect_changepoints(
            entries, test=ConfidenceTest(confidence=0.8)
        )
        strict = history.detect_changepoints(
            entries, test=ConfidenceTest(confidence=0.999)
        )
        assert self.LABEL in loose
        assert self.LABEL not in strict


class TestGatewayExportSeam:
    """MetricsExporter.history_record output feeds entry_from_metrics."""

    def test_gateway_record_roundtrips_through_the_history(self, tmp_path):
        from repro.service.control import MetricsExporter, TelemetryHub
        from repro.service.simulation import RequestRecord

        hub = TelemetryHub(window_s=10.0)
        for i in range(12):
            hub.publish(
                RequestRecord(
                    request_id=f"r{i}",
                    payload=f"r{i}",
                    tier=0.05,
                    arrival_s=0.1 * i,
                    finished_s=0.1 * i + 0.1,
                    response_time_s=0.1,
                    queue_wait_s=0.0,
                    versions_used=("fast",),
                    escalated=False,
                    invocation_cost=1e-5,
                    node_seconds={"fast": 0.1},
                    failed=False,
                    shed=False,
                    degraded=False,
                )
            )
        body = MetricsExporter(hub).history_record(2.0, smoke=False)

        path = tmp_path / "h.jsonl"
        entry = history.entry_from_metrics(
            body["metrics"],
            source=body["source"],
            smoke=body["smoke"],
            timestamp=2.0,
            machine=MACHINE_A,
            git={"commit": "c", "branch": "main"},
        )
        history.append_entry(entry, path)

        (loaded,) = history.load_history(path, source="gateway")
        series = history.metric_series([loaded], "gateway.goodput_rps")
        assert len(series) == 1 and series[0] > 0.0

    def test_schema_matches_the_committed_artifact_shape(self, tmp_path):
        # A history line is plain JSON with the documented keys, so the
        # file stays greppable and diff-able.
        path = tmp_path / "h.jsonl"
        history.append_entry(make_entry(1.0, timestamp=1.0), path)
        raw = json.loads(path.read_text().strip())
        assert set(raw) == {
            "schema", "timestamp", "source", "commit", "branch",
            "machine", "engine", "smoke", "metrics",
        }
        assert raw["schema"] == history.SCHEMA_VERSION
