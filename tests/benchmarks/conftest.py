"""Make the benchmark harness modules importable from the test suite.

The ``benchmarks/`` directory is not a package (its files are run
directly and by path), so tests of its modules — ``compare_perf.py``,
``history.py`` — import them by putting the directory on ``sys.path``,
exactly as pytest does when running the benchmark files themselves.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent.parent / "benchmarks"

if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))
