"""Regression tests for compare_perf's three fixed bugs + the history modes.

Each test class pins one of the historical failure modes:

* ``TestShapeMismatch`` — ``compare`` used to crash with ``TypeError``
  (``set(old) & set(new)`` on a float) when a metric was a dict in one
  artefact and a scalar in the other;
* ``TestZeroBaseline`` — ``compare`` used to silently skip any metric
  whose baseline was falsy (``or not old`` / ``if not old[key]``), so
  zero baselines like ``resilience.time_to_recover_s`` could regress
  without ever being compared;
* ``TestSmokeVsFull`` — smoke artefacts were compared line-by-line
  against the full-repetition baseline, producing false ADVISORY flags
  in every fast-tier CI log.
"""

import json

import pytest

import compare_perf
import history as history_mod
from compare_perf import Row, compare, main


def rows_by_label(baseline, fresh, threshold=0.05):
    return {row.label: row for row in compare(baseline, fresh, threshold)}


class TestShapeMismatch:
    """Dict-vs-scalar metric shapes: explicit schema row, never a crash."""

    def test_scalar_to_dict_does_not_crash(self):
        baseline = {"serving_simulator": {"requests_per_s": 100.0}}
        fresh = {"serving_simulator": {"requests_per_s": {"columnar": 120.0}}}
        rows = list(compare(baseline, fresh, 0.05))  # used to raise TypeError
        assert len(rows) == 1
        row = rows[0]
        assert row.label == "serving_simulator.requests_per_s"
        assert "schema changed" in row.note
        assert not row.flagged
        assert row.old is None and row.new is None and row.delta is None

    def test_dict_to_scalar_does_not_crash(self):
        baseline = {"rule_generator": {"trials_per_s": {"vectorized": 100.0}}}
        fresh = {"rule_generator": {"trials_per_s": 120.0}}
        rows = list(compare(baseline, fresh, 0.05))
        assert len(rows) == 1
        assert "schema changed" in rows[0].note
        assert "per-key dict" in rows[0].note

    def test_key_level_type_mismatch_is_a_schema_row(self):
        baseline = {"control_plane": {"goodput_rps": {"spike": 5.0}}}
        fresh = {"control_plane": {"goodput_rps": {"spike": {"static": 5.0}}}}
        rows = rows_by_label(baseline, fresh)
        row = rows["control_plane.goodput_rps.spike"]
        assert "schema changed" in row.note and not row.flagged

    def test_added_and_dropped_keys_are_reported(self):
        baseline = {"control_plane": {"goodput_rps": {"spike": 5.0, "old": 1.0}}}
        fresh = {"control_plane": {"goodput_rps": {"spike": 5.0, "new": 2.0}}}
        rows = rows_by_label(baseline, fresh)
        assert "key dropped" in rows["control_plane.goodput_rps.old"].note
        assert "key new" in rows["control_plane.goodput_rps.new"].note
        assert rows["control_plane.goodput_rps.spike"].delta == 0.0

    def test_matching_dict_shapes_still_compare_per_key(self):
        baseline = {"control_plane": {"p95_latency_s": {"spike": 1.0}}}
        fresh = {"control_plane": {"p95_latency_s": {"spike": 2.0}}}
        row = rows_by_label(baseline, fresh)["control_plane.p95_latency_s.spike"]
        assert row.delta == pytest.approx(1.0)
        assert row.flagged  # smaller-is-better metric doubled


class TestZeroBaseline:
    """Zero baselines are compared, not skipped; only the division is guarded."""

    def test_zero_baseline_regression_is_reported_and_flagged(self):
        # The silent-skip bug's exact shape: time_to_recover_s == 0.0
        # (perfect recovery) regressing to a nonzero tail.
        baseline = {"resilience": {"time_to_recover_s": 0.0}}
        fresh = {"resilience": {"time_to_recover_s": 2.0}}
        rows = rows_by_label(baseline, fresh)
        row = rows["resilience.time_to_recover_s"]  # used to be absent
        assert row.flagged
        assert row.delta is None
        assert "zero baseline" in row.note

    def test_zero_baseline_improvement_is_reported_not_flagged(self):
        baseline = {"resilience": {"goodput_retention": 0.0}}
        fresh = {"resilience": {"goodput_retention": 0.9}}
        row = rows_by_label(baseline, fresh)["resilience.goodput_retention"]
        assert not row.flagged
        assert "zero baseline" in row.note

    def test_zero_to_zero_is_an_ok_row(self):
        baseline = {"resilience": {"retry_amplification": 0.0}}
        fresh = {"resilience": {"retry_amplification": 0.0}}
        row = rows_by_label(baseline, fresh)["resilience.retry_amplification"]
        assert row.delta == 0.0 and not row.flagged and not row.note

    def test_falsy_dict_key_baseline_is_compared(self):
        # The dict branch had the same bug (`if not old[key]: continue`).
        baseline = {"resilience": {"time_to_recover_s": {"cascade-static": 0.0}}}
        fresh = {"resilience": {"time_to_recover_s": {"cascade-static": 3.0}}}
        rows = rows_by_label(baseline, fresh)
        row = rows["resilience.time_to_recover_s.cascade-static"]
        assert row.flagged and "zero baseline" in row.note

    def test_nonzero_metrics_unaffected(self):
        baseline = {"serving_simulator": {"requests_per_s": 100.0}}
        fresh = {"serving_simulator": {"requests_per_s": 90.0}}
        row = rows_by_label(baseline, fresh)["serving_simulator.requests_per_s"]
        assert row.delta == pytest.approx(-0.1)
        assert row.flagged


class TestSmokeVsFull:
    """Smoke artefacts are not flagged against full-repetition baselines."""

    def test_smoke_section_flags_are_suppressed(self):
        baseline = {
            "serving_simulator": {"requests_per_s": 100.0, "smoke": False}
        }
        fresh = {"serving_simulator": {"requests_per_s": 50.0, "smoke": True}}
        row = rows_by_label(baseline, fresh)["serving_simulator.requests_per_s"]
        assert not row.flagged  # used to be a false ADVISORY in CI logs
        assert "smoke" in row.note and "suppressed" in row.note
        assert row.delta == pytest.approx(-0.5)  # the delta is still shown

    def test_matching_smoke_tags_keep_the_gate(self):
        baseline = {
            "serving_simulator": {"requests_per_s": 100.0, "smoke": True}
        }
        fresh = {"serving_simulator": {"requests_per_s": 50.0, "smoke": True}}
        row = rows_by_label(baseline, fresh)["serving_simulator.requests_per_s"]
        assert row.flagged

    def test_full_vs_full_keeps_the_gate(self):
        baseline = {"serving_simulator": {"requests_per_s": 100.0, "smoke": False}}
        fresh = {"serving_simulator": {"requests_per_s": 50.0, "smoke": False}}
        assert rows_by_label(baseline, fresh)[
            "serving_simulator.requests_per_s"
        ].flagged

    def test_suppression_is_per_section(self):
        baseline = {
            "serving_simulator": {"requests_per_s": 100.0, "smoke": False},
            "resilience": {"goodput_retention": 1.0, "smoke": False},
        }
        fresh = {
            # Timing section ran in smoke mode...
            "serving_simulator": {"requests_per_s": 50.0, "smoke": True},
            # ...but the deterministic section is still full-fidelity.
            "resilience": {"goodput_retention": 0.5, "smoke": False},
        }
        rows = rows_by_label(baseline, fresh)
        assert not rows["serving_simulator.requests_per_s"].flagged
        assert rows["resilience.goodput_retention"].flagged

    def test_zero_baseline_suppressed_under_smoke_mismatch(self):
        baseline = {"resilience": {"time_to_recover_s": 0.0, "smoke": False}}
        fresh = {"resilience": {"time_to_recover_s": 2.0, "smoke": True}}
        row = rows_by_label(baseline, fresh)["resilience.time_to_recover_s"]
        assert not row.flagged
        assert "suppressed" in row.note


class TestMainTwoArtifacts:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_strict_fails_on_real_regression(self, tmp_path):
        baseline = self.write(
            tmp_path, "base.json", {"policy_evaluation": {"rows_per_s": 100.0}}
        )
        fresh = self.write(
            tmp_path, "fresh.json", {"policy_evaluation": {"rows_per_s": 50.0}}
        )
        assert main([str(baseline), str(fresh)]) == 0  # advisory by default
        assert main([str(baseline), str(fresh), "--strict"]) == 1

    def test_strict_passes_when_smoke_suppressed(self, tmp_path, capsys):
        baseline = self.write(
            tmp_path,
            "base.json",
            {"policy_evaluation": {"rows_per_s": 100.0, "smoke": False}},
        )
        fresh = self.write(
            tmp_path,
            "fresh.json",
            {"policy_evaluation": {"rows_per_s": 50.0, "smoke": True}},
        )
        assert main([str(baseline), str(fresh), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out

    def test_missing_artifact_is_a_noop(self, tmp_path):
        missing = tmp_path / "nope.json"
        fresh = self.write(tmp_path, "fresh.json", {})
        assert main([str(missing), str(fresh), "--strict"]) == 0

    def test_schema_change_does_not_crash_end_to_end(self, tmp_path, capsys):
        baseline = self.write(
            tmp_path,
            "base.json",
            {"serving_simulator": {"requests_per_s": 100.0}},
        )
        fresh = self.write(
            tmp_path,
            "fresh.json",
            {"serving_simulator": {"requests_per_s": {"columnar": 1.0}}},
        )
        assert main([str(baseline), str(fresh), "--strict"]) == 0
        assert "schema changed" in capsys.readouterr().out


def seeded_history(tmp_path, values, *, label="policy_evaluation.rows_per_s", smoke=False, branch="main"):
    """Write a history file with one entry per value, fixed metadata."""
    path = tmp_path / "bench_history.jsonl"
    for i, value in enumerate(values):
        entry = history_mod.entry_from_metrics(
            {label: float(value)},
            source="bench_perf",
            smoke=smoke,
            engine="columnar",
            timestamp=1_000.0 + i,
            machine={"hostname": "quiet-box", "platform": "linux", "python": "3", "cpu_count": 8},
            git={"commit": f"c{i}", "branch": branch},
        )
        history_mod.append_entry(entry, path)
    return path


class TestAgainstHistory:
    def fresh_artifact(self, tmp_path, value, *, smoke=False):
        path = tmp_path / "fresh.json"
        path.write_text(
            json.dumps({"policy_evaluation": {"rows_per_s": value, "smoke": smoke}})
        )
        return path

    def test_regression_past_history_noise_is_flagged(self, tmp_path, capsys):
        hist = seeded_history(tmp_path, [100.0 + 0.1 * i for i in range(10)])
        fresh = self.fresh_artifact(tmp_path, 50.0)
        code = main(
            ["--against-history", str(fresh), "--history", str(hist), "--strict"]
        )
        assert code == 1
        assert "ADVISORY regression" in capsys.readouterr().out

    def test_value_inside_history_noise_passes(self, tmp_path):
        hist = seeded_history(tmp_path, [100.0, 101.0, 99.0, 100.5, 99.5, 100.2])
        fresh = self.fresh_artifact(tmp_path, 100.3)
        assert (
            main(
                ["--against-history", str(fresh), "--history", str(hist), "--strict"]
            )
            == 0
        )

    def test_improvement_is_not_flagged(self, tmp_path):
        hist = seeded_history(tmp_path, [100.0, 101.0, 99.0, 100.5, 99.5])
        fresh = self.fresh_artifact(tmp_path, 500.0)  # faster is better
        assert (
            main(
                ["--against-history", str(fresh), "--history", str(hist), "--strict"]
            )
            == 0
        )

    def test_smoke_artifact_judged_against_smoke_entries_only(self, tmp_path, capsys):
        # Full history says ~100; smoke history says ~40.  A smoke run
        # at 42 is healthy FOR A SMOKE RUN and must not be flagged
        # against the full numbers.
        seeded_history(tmp_path, [100.0, 101.0, 99.0, 100.5, 99.5], smoke=False)
        hist = seeded_history(
            tmp_path, [40.0, 41.0, 39.0, 40.5, 39.5], smoke=True
        )
        fresh = self.fresh_artifact(tmp_path, 42.0, smoke=True)
        assert (
            main(
                ["--against-history", str(fresh), "--history", str(hist), "--strict"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "smoke" not in out or "insufficient" not in out

    def test_insufficient_history_records_without_judging(self, tmp_path, capsys):
        hist = seeded_history(tmp_path, [100.0, 99.0])  # below MIN_HISTORY
        fresh = self.fresh_artifact(tmp_path, 10.0)  # would be a huge regression
        assert (
            main(
                ["--against-history", str(fresh), "--history", str(hist), "--strict"]
            )
            == 0
        )
        assert "insufficient" in capsys.readouterr().out

    def test_empty_history_is_graceful(self, tmp_path, capsys):
        hist = tmp_path / "bench_history.jsonl"  # does not exist
        fresh = self.fresh_artifact(tmp_path, 100.0)
        assert (
            main(
                ["--against-history", str(fresh), "--history", str(hist), "--strict"]
            )
            == 0
        )
        assert "insufficient" in capsys.readouterr().out

    def test_changepoint_in_history_is_reported(self, tmp_path, capsys):
        values = [100.0, 100.2, 99.8, 100.1, 99.9, 100.0] + [50.0] * 6
        hist = seeded_history(tmp_path, values)
        fresh = self.fresh_artifact(tmp_path, 50.1)
        main(["--against-history", str(fresh), "--history", str(hist)])
        assert "changepoint" in capsys.readouterr().out

    def test_machine_mismatch_warning_is_printed(self, tmp_path, capsys):
        hist = seeded_history(
            tmp_path, [100.0, 101.0, 99.0, 100.5, 99.5, 100.1]
        )
        fresh = self.fresh_artifact(tmp_path, 100.0)
        main(["--against-history", str(fresh), "--history", str(hist)])
        out = capsys.readouterr().out
        # The seeded entries name a fake machine, so the current host
        # cannot appear in the history.
        assert "WARN" in out and "no entries in this history" in out


class TestBranchVsMain:
    def test_branch_regression_is_flagged(self, tmp_path, capsys):
        hist = seeded_history(
            tmp_path, [100.0, 101.0, 99.0, 100.5, 99.5, 100.2], branch="main"
        )
        seeded_history(tmp_path, [60.0, 61.0], branch="feature")
        code = main(
            [
                "--branch-vs-main",
                "--history",
                str(hist),
                "--branch",
                "feature",
                "--strict",
            ]
        )
        assert code == 1
        assert "ADVISORY regression" in capsys.readouterr().out

    def test_matching_branch_passes(self, tmp_path):
        hist = seeded_history(
            tmp_path, [100.0, 101.0, 99.0, 100.5, 99.5, 100.2], branch="main"
        )
        seeded_history(tmp_path, [100.1, 99.9], branch="feature")
        assert (
            main(
                [
                    "--branch-vs-main",
                    "--history",
                    str(hist),
                    "--branch",
                    "feature",
                    "--strict",
                ]
            )
            == 0
        )

    def test_no_branch_entries_is_graceful(self, tmp_path, capsys):
        hist = seeded_history(tmp_path, [100.0] * 6, branch="main")
        assert (
            main(
                [
                    "--branch-vs-main",
                    "--history",
                    str(hist),
                    "--branch",
                    "ghost",
                    "--strict",
                ]
            )
            == 0
        )
        assert "no history entries" in capsys.readouterr().out


class TestCLIGuards:
    def test_history_modes_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--against-history", "x.json", "--branch-vs-main"])

    def test_history_modes_reject_positionals(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["a.json", "b.json", "--branch-vs-main"])

    def test_two_artifact_mode_needs_both_paths(self):
        with pytest.raises(SystemExit):
            main(["only-one.json"])

    def test_metric_direction_lookup(self):
        assert compare_perf._metric_direction("policy_evaluation.rows_per_s") == 1
        assert (
            compare_perf._metric_direction("control_plane.p95_latency_s.spike")
            == -1
        )
        assert compare_perf._metric_direction("unknown.metric") is None

    def test_row_is_exported(self):
        assert Row("x", 1.0, 2.0, 1.0, False).label == "x"
