"""Metrics export: WindowSnapshot -> history-schema rows -> scrape text."""

import math

from repro.service.control import (
    MetricsExporter,
    TelemetryHub,
    snapshot_metrics,
)
from repro.service.simulation import RequestRecord


def record(
    request_id,
    finished_s,
    *,
    response_time_s=0.1,
    tier=0.0,
    failed=False,
    shed=False,
    degraded=False,
    cost=1e-5,
):
    return RequestRecord(
        request_id=request_id,
        payload=request_id,
        tier=tier,
        arrival_s=max(0.0, finished_s - response_time_s),
        finished_s=finished_s,
        response_time_s=response_time_s,
        queue_wait_s=0.0,
        versions_used=() if (failed or shed) else ("fast",),
        escalated=False,
        invocation_cost=0.0 if (failed or shed) else cost,
        node_seconds={} if (failed or shed) else {"fast": response_time_s},
        failed=failed,
        shed=shed,
        degraded=degraded,
    )


def loaded_hub(n=30, window_s=10.0):
    hub = TelemetryHub(window_s=window_s)
    for i in range(n):
        hub.publish(record(f"r{i}", finished_s=0.1 * (i + 1), tier=0.05))
    return hub


class TestSnapshotMetrics:
    def test_headline_rows_match_the_snapshot(self):
        hub = loaded_hub()
        snapshot = hub.snapshot(3.0)
        metrics = snapshot_metrics(snapshot)
        assert metrics["gateway.n"] == float(snapshot.n)
        assert metrics["gateway.goodput_rps"] == snapshot.goodput_rps
        assert metrics["gateway.availability"] == snapshot.availability
        assert metrics["gateway.p95_latency_s"] == snapshot.p95_latency.value
        assert metrics["gateway.p95_latency_s.n"] == float(snapshot.p95_latency.n)
        assert metrics["gateway.node_seconds.fast"] == snapshot.node_seconds["fast"]
        assert metrics["gateway.node_seconds_per_s"] == snapshot.node_seconds_per_s

    def test_labels_follow_the_history_schema(self):
        metrics = snapshot_metrics(loaded_hub().snapshot(3.0))
        # Dotted section.metric[.key] labels, exactly what
        # benchmarks/history.py flattens BENCH_PERF.json sections into.
        assert all(label.startswith("gateway.") for label in metrics)
        assert all(isinstance(v, float) for v in metrics.values())

    def test_tier_breakdowns_use_stable_dotfree_keys(self):
        metrics = snapshot_metrics(loaded_hub().snapshot(3.0))
        assert metrics["gateway.tier.0_05.n"] == 30.0
        assert "gateway.tier.0_05.p95_latency_s" in metrics

    def test_nan_aggregates_are_omitted_not_exported(self):
        hub = TelemetryHub(window_s=10.0)
        metrics = snapshot_metrics(hub.snapshot(1.0))
        # Empty window: availability/mean_cost/percentile values are nan
        # and must be absent; counts are still reported.
        assert "gateway.availability" not in metrics
        assert "gateway.mean_cost" not in metrics
        assert "gateway.p95_latency_s" not in metrics
        assert metrics["gateway.p95_latency_s.n"] == 0.0
        assert metrics["gateway.n"] == 0.0
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in metrics.values()
        )

    def test_shed_and_failed_counts_are_exported(self):
        hub = TelemetryHub(window_s=10.0)
        hub.publish(record("a", 0.1))
        hub.publish(record("b", 0.2, failed=True))
        hub.publish(record("c", 0.3, shed=True))
        metrics = snapshot_metrics(hub.snapshot(1.0))
        assert metrics["gateway.n"] == 3.0
        assert metrics["gateway.n_failed"] == 1.0
        assert metrics["gateway.n_shed"] == 1.0
        assert metrics["gateway.n_answered"] == 1.0

    def test_custom_prefix(self):
        metrics = snapshot_metrics(
            loaded_hub().snapshot(3.0), prefix="region.us-east"
        )
        assert "region.us-east.goodput_rps" in metrics


class TestMetricsExporter:
    def test_scrape_equals_direct_snapshot_metrics(self):
        hub = loaded_hub()
        exporter = MetricsExporter(hub, prefix="gateway")
        scraped = exporter.scrape(3.0)
        # A second scrape at the same instant sees the same window.
        assert scraped == snapshot_metrics(hub.snapshot(3.0))
        assert exporter.total_scrapes == 1

    def test_render_is_prometheus_style(self):
        exporter = MetricsExporter(loaded_hub())
        text = exporter.render(3.0)
        lines = text.strip().splitlines()
        assert len(lines) % 2 == 0
        for type_line, value_line in zip(lines[::2], lines[1::2]):
            assert type_line.startswith("# TYPE ") and type_line.endswith(" gauge")
            name, value = value_line.split(" ")
            assert type_line.split()[2] == name
            float(value)  # parses
            # Prometheus metric-name charset: no dots or dashes.
            assert "." not in name and "-" not in name

    def test_history_record_matches_the_bench_schema(self):
        exporter = MetricsExporter(loaded_hub())
        body = exporter.history_record(3.0, smoke=True)
        assert body["source"] == "gateway"
        assert body["smoke"] is True
        assert body["metrics"] == snapshot_metrics(loaded_hub().snapshot(3.0))

    def test_scrapes_advance_the_window(self):
        hub = loaded_hub(n=5, window_s=1.0)
        exporter = MetricsExporter(hub)
        assert exporter.scrape(0.5)["gateway.n"] == 5.0
        # One window later everything has been evicted.
        assert exporter.scrape(5.0)["gateway.n"] == 0.0
        assert exporter.total_scrapes == 2

    def test_exporter_is_passive(self):
        hub = loaded_hub()
        MetricsExporter(hub)
        # Construction subscribes nothing and publishes nothing.
        assert hub.total_published == 30
        assert not hub._hooks


class TestRenderEdgeCases:
    """Prometheus text-format hardening: NaN, infinities, label charset."""

    def _exporter_with(self, extra):
        exporter = MetricsExporter(TelemetryHub(window_s=10.0))
        exporter.add_source(lambda: extra)
        return exporter

    def test_nan_samples_are_omitted(self):
        text = self._exporter_with({"bad.sample": float("nan")}).render(1.0)
        assert "bad_sample" not in text

    def test_infinities_render_as_prometheus_inf(self):
        text = self._exporter_with(
            {"up.inf": float("inf"), "down.inf": float("-inf")}
        ).render(1.0)
        assert "up_inf +Inf" in text
        assert "down_inf -Inf" in text
        # Python's repr spelling must not leak into the exposition.
        assert "up_inf inf" not in text

    def test_invalid_label_characters_are_sanitized(self):
        text = self._exporter_with(
            {"weird label-x!": 1.0, "9starts.with.digit": 2.0}
        ).render(1.0)
        assert "weird_label_x_ 1" in text
        assert "_9starts_with_digit 2" in text

    def test_type_headers_are_unique(self):
        # Two dotted labels that collapse to the same Prometheus name
        # must not emit duplicate # TYPE headers.
        text = self._exporter_with({"a.b": 1.0, "a_b": 2.0}).render(1.0)
        assert text.count("# TYPE a_b gauge") == 1


class TestMetricsSources:
    def test_sources_merge_into_the_scrape(self):
        exporter = MetricsExporter(TelemetryHub(window_s=10.0))
        exporter.add_source(lambda: {"custom.counter": 3.0})
        scraped = exporter.scrape(1.0)
        assert scraped["custom.counter"] == 3.0
        # Window metrics are still present alongside.
        assert "gateway.n" in scraped

    def test_later_sources_win_on_collision(self):
        exporter = MetricsExporter(TelemetryHub(window_s=10.0))
        exporter.add_source(lambda: {"k": 1.0})
        exporter.add_source(lambda: {"k": 2.0})
        assert exporter.scrape(1.0)["k"] == 2.0

    def test_trace_collector_plugs_in_as_a_source(self):
        from repro.obs import Span, Trace, TraceCollector

        collector = TraceCollector()
        collector.add_trace(
            Trace(
                request_id="r1",
                spans=[Span(name="request", start_s=0.0, end_s=1.0)],
            )
        )
        exporter = MetricsExporter(TelemetryHub(window_s=10.0))
        exporter.add_source(collector.metrics)
        scraped = exporter.scrape(1.0)
        assert scraped["trace.requests_total"] == 1.0
        assert scraped["trace.outcome.ok"] == 1.0
        text = exporter.render(1.0)
        assert "trace_requests_total 1" in text

    def test_control_plane_counters_plug_in_as_a_source(self):
        from repro.service.control import ControlPlane, ControlSpec, SLOSpec

        plane = ControlPlane.from_spec(
            ControlSpec(
                window_s=8.0,
                tick_interval_s=0.5,
                slos=(SLOSpec(name="latency", max_p95_latency_s=100.0),),
            ),
            seed=0,
        )
        plane.gray_detected_total = 2
        metrics = plane.metrics()
        assert metrics == {
            "control.gray_detected_total": 2.0,
            "control.gray_cleared_total": 0.0,
            "control.shed_total": 0.0,
            "control.degraded_total": 0.0,
        }
        exporter = MetricsExporter(TelemetryHub(window_s=10.0))
        exporter.add_source(plane.metrics)
        assert exporter.scrape(1.0)["control.gray_detected_total"] == 2.0
