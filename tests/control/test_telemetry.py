"""Telemetry window: ring-buffer eviction, aggregates, small-N guard."""

import math

import pytest

from repro.service.control import (
    MIN_PERCENTILE_SAMPLES,
    TelemetryHub,
    guarded_percentile,
)
from repro.service.simulation import RequestRecord


def record(
    request_id,
    finished_s,
    *,
    response_time_s=0.1,
    tier=0.0,
    failed=False,
    shed=False,
    degraded=False,
    cost=1e-5,
    node_seconds=None,
    payload=None,
):
    return RequestRecord(
        request_id=request_id,
        payload=payload if payload is not None else request_id,
        tier=tier,
        arrival_s=max(0.0, finished_s - response_time_s),
        finished_s=finished_s,
        response_time_s=response_time_s,
        queue_wait_s=0.0,
        versions_used=() if (failed or shed) else ("fast",),
        escalated=False,
        invocation_cost=0.0 if (failed or shed) else cost,
        node_seconds=dict(node_seconds or ({} if (failed or shed) else {"fast": response_time_s})),
        failed=failed,
        shed=shed,
        degraded=degraded,
    )


class TestGuardedPercentile:
    """The small-N window guard (degenerate-window behaviour)."""

    def test_empty_window_is_nan_and_flagged(self):
        est = guarded_percentile([], 95.0)
        assert math.isnan(est.value)
        assert est.n == 0
        assert est.low_confidence and not est.reliable

    def test_single_sample_is_flagged(self):
        est = guarded_percentile([0.5], 95.0)
        assert est.value == 0.5
        assert est.low_confidence

    def test_nineteen_samples_flagged_twenty_not(self):
        values = [float(i) for i in range(19)]
        assert guarded_percentile(values, 95.0).low_confidence
        values.append(19.0)
        est = guarded_percentile(values, 95.0)
        assert not est.low_confidence
        assert est.n == 20 == MIN_PERCENTILE_SAMPLES

    def test_pathological_small_window_is_not_trusted(self):
        # With 4 samples there is always exactly one "tail outlier" by
        # quantile definition — the guard must flag it, not rank it.
        est = guarded_percentile([0.1, 0.1, 0.1, 5.0], 95.0)
        assert est.value > 4.0
        assert est.low_confidence

    def test_custom_min_samples(self):
        assert not guarded_percentile([1.0, 2.0], 50.0, min_samples=2).low_confidence

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            guarded_percentile([1.0], 101.0)


class TestTelemetryHub:
    def test_window_evicts_old_records(self):
        hub = TelemetryHub(window_s=5.0)
        for i in range(10):
            hub.publish(record(f"r{i}", float(i)))
        snap = hub.snapshot(9.0)
        # Horizon is 4.0: records published at t in [4, 9] survive.
        assert snap.n == 6
        assert hub.total_published == 10

    def test_publish_time_defaults_to_finished_s(self):
        hub = TelemetryHub(window_s=2.0)
        hub.publish(record("a", 1.0))
        hub.publish(record("b", 4.0))
        assert hub.snapshot(4.0).n == 1

    def test_out_of_order_publish_rejected(self):
        hub = TelemetryHub(window_s=5.0)
        hub.publish(record("a", 3.0))
        with pytest.raises(ValueError, match="out of order"):
            hub.publish(record("b", 1.0))

    def test_counts_and_availability(self):
        hub = TelemetryHub(window_s=10.0)
        hub.publish(record("ok1", 1.0))
        hub.publish(record("ok2", 2.0, degraded=True))
        hub.publish(record("bad", 3.0, failed=True))
        hub.publish(record("gone", 4.0, shed=True))
        snap = hub.snapshot(5.0)
        assert snap.n == 4
        assert snap.n_failed == 1
        assert snap.n_shed == 1
        assert snap.n_degraded == 1
        assert snap.n_answered == 2
        assert snap.availability == pytest.approx(0.5)
        # Shed and failed requests contribute no latency samples.
        assert snap.p95_latency.n == 2

    def test_node_seconds_burn_and_cost(self):
        hub = TelemetryHub(window_s=10.0)
        hub.publish(record("a", 1.0, node_seconds={"fast": 0.1, "slow": 0.4}))
        hub.publish(record("b", 2.0, node_seconds={"fast": 0.2}))
        snap = hub.snapshot(2.0)
        assert snap.node_seconds == pytest.approx({"fast": 0.3, "slow": 0.4})
        # Run younger than one window: rates normalise over now, not window.
        assert snap.span_s == pytest.approx(2.0)
        assert snap.node_seconds_per_s == pytest.approx(0.7 / 2.0)
        assert snap.mean_cost == pytest.approx(1e-5)

    def test_per_tier_breakdown(self):
        hub = TelemetryHub(window_s=10.0)
        hub.publish(record("a", 1.0, tier=0.0, response_time_s=0.1))
        hub.publish(record("b", 2.0, tier=0.05, response_time_s=0.9))
        hub.publish(record("c", 3.0, tier=0.05, shed=True))
        snap = hub.snapshot(3.0)
        assert set(snap.tiers) == {0.0, 0.05}
        loose = snap.for_tier(0.05)
        assert loose.n == 2 and loose.n_shed == 1
        assert loose.p95_latency.value == pytest.approx(0.9)
        # Unseen tiers come back empty rather than KeyError-ing.
        empty = snap.for_tier(0.5)
        assert empty.n == 0 and math.isnan(empty.p95_latency.value)

    def test_subscribe_hooks_fire_per_publish(self):
        hub = TelemetryHub(window_s=5.0)
        seen = []
        hub.subscribe(lambda r, t: seen.append((r.request_id, t)))
        hub.publish(record("a", 1.0), 1.5)
        assert seen == [("a", 1.5)]

    def test_publish_is_a_plain_event_hook(self):
        # The engine-facing contract: hub.publish has the record_hooks
        # callable shape, so producers need no import of this package.
        hub = TelemetryHub(window_s=5.0)
        hook = hub.publish
        hook(record("a", 1.0), 1.0)
        assert len(hub) == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TelemetryHub(window_s=0.0)
