"""SLO monitors: raw evaluation, hysteresis, and the small-N guard."""

import pytest

from repro.service.control import SLOMonitor, SLOSpec, SLOState, TelemetryHub
from repro.service.control.slo import worst_state

from test_telemetry import record


def snapshot_with(latencies, now=100.0, *, n_failed=0, window_s=50.0):
    hub = TelemetryHub(window_s=window_s)
    t = now - window_s + 1.0
    for i, latency in enumerate(latencies):
        hub.publish(record(f"r{i}", t + i * 1e-3, response_time_s=latency))
    for i in range(n_failed):
        hub.publish(record(f"f{i}", now - 1.0, failed=True))
    return hub.snapshot(now)


class TestSpecValidation:
    def test_needs_a_target(self):
        with pytest.raises(ValueError, match="no target"):
            SLOSpec(name="empty")

    def test_needs_a_name(self):
        with pytest.raises(ValueError, match="name"):
            SLOSpec(name="", max_p95_latency_s=1.0)

    def test_bounds(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", max_p95_latency_s=-1.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", min_availability=1.5)
        with pytest.raises(ValueError):
            SLOSpec(name="x", max_p95_latency_s=1.0, breach_after=0)


class TestHysteresis:
    def spec(self, **kw):
        defaults = dict(
            name="latency", max_p95_latency_s=1.0, breach_after=2, clear_after=3
        )
        defaults.update(kw)
        return SLOSpec(**defaults)

    def test_single_violating_window_does_not_breach(self):
        monitor = SLOMonitor(self.spec())
        bad = snapshot_with([2.0] * 30)
        status = monitor.evaluate(bad)
        assert status.raw_state is SLOState.BREACH
        assert status.state is not SLOState.BREACH

    def test_consecutive_violations_breach(self):
        monitor = SLOMonitor(self.spec())
        bad = snapshot_with([2.0] * 30)
        monitor.evaluate(bad)
        status = monitor.evaluate(bad)
        assert status.state is SLOState.BREACH
        assert status.transitioned

    def test_clearing_needs_consecutive_ok(self):
        monitor = SLOMonitor(self.spec())
        bad = snapshot_with([2.0] * 30)
        good = snapshot_with([0.1] * 30)
        monitor.evaluate(bad)
        monitor.evaluate(bad)
        assert monitor.evaluate(good).state is SLOState.BREACH
        assert monitor.evaluate(good).state is SLOState.BREACH
        status = monitor.evaluate(good)
        assert status.state is SLOState.OK
        assert status.transitioned

    def test_violation_resets_clear_streak(self):
        monitor = SLOMonitor(self.spec())
        bad = snapshot_with([2.0] * 30)
        good = snapshot_with([0.1] * 30)
        monitor.evaluate(bad)
        monitor.evaluate(bad)
        monitor.evaluate(good)
        monitor.evaluate(good)
        monitor.evaluate(bad)  # streak broken
        monitor.evaluate(good)
        monitor.evaluate(good)
        assert monitor.state is SLOState.BREACH

    def test_warn_band(self):
        monitor = SLOMonitor(self.spec(warn_ratio=0.9))
        warm = snapshot_with([0.95] * 30)
        status = monitor.evaluate(warm)
        assert status.state is SLOState.WARN
        assert status.raw_state is SLOState.WARN

    def test_availability_floor(self):
        spec = SLOSpec(
            name="avail", min_availability=0.9, breach_after=1, clear_after=1
        )
        monitor = SLOMonitor(spec)
        # 30 ok + 10 failed -> availability 0.75 < 0.9.
        status = monitor.evaluate(snapshot_with([0.1] * 30, n_failed=10))
        assert status.state is SLOState.BREACH
        assert status.pressures["availability"] > 1.0


class TestSmallNGuard:
    def test_low_confidence_p95_cannot_breach_alone(self):
        spec = SLOSpec(
            name="latency", max_p95_latency_s=1.0, breach_after=1, clear_after=1
        )
        monitor = SLOMonitor(spec)
        # 5 samples, all violating — but far below the 20-sample guard.
        status = monitor.evaluate(snapshot_with([3.0] * 5))
        assert status.raw_state is SLOState.WARN
        assert status.guarded
        assert monitor.state is not SLOState.BREACH

    def test_solid_metric_still_breaches_despite_thin_percentile(self):
        spec = SLOSpec(
            name="both",
            max_p95_latency_s=1.0,
            min_availability=0.9,
            breach_after=1,
            clear_after=1,
        )
        monitor = SLOMonitor(spec)
        # Availability is computed over all 15 requests — a solid count
        # violation — so the thin p95 does not veto the breach.
        status = monitor.evaluate(snapshot_with([3.0] * 5, n_failed=10))
        assert status.raw_state is SLOState.BREACH
        assert not status.guarded

    def test_sheds_do_not_count_against_availability(self):
        # The monitor triggers shedding; if its own sheds counted as
        # unavailability, one breach would latch the controller into
        # shedding healthy traffic forever.  Admitted traffic is what
        # the availability SLO judges.
        spec = SLOSpec(
            name="avail", min_availability=0.9, breach_after=1, clear_after=1
        )
        monitor = SLOMonitor(spec)
        hub = TelemetryHub(window_s=50.0)
        for i in range(30):
            hub.publish(record(f"ok{i}", 60.0 + i))
        for i in range(40):
            hub.publish(record(f"shed{i}", 95.0, shed=True))
        status = monitor.evaluate(hub.snapshot(100.0))
        # 30/70 raw availability, but 30/30 of admitted requests.
        assert status.state is SLOState.OK

    def test_empty_window_is_ok(self):
        spec = SLOSpec(
            name="latency", max_p95_latency_s=1.0, breach_after=1, clear_after=1
        )
        monitor = SLOMonitor(spec)
        hub = TelemetryHub(window_s=5.0)
        assert monitor.evaluate(hub.snapshot(10.0)).state is SLOState.OK


def test_worst_state_ordering():
    assert worst_state([]) is SLOState.OK
    assert worst_state([SLOState.OK, SLOState.WARN]) is SLOState.WARN
    assert (
        worst_state([SLOState.WARN, SLOState.BREACH, SLOState.OK])
        is SLOState.BREACH
    )
