"""Zero-copy telemetry windows: the dense latency buffer and its edges.

PR 6 moved windowed percentile ranking from per-snapshot Python lists
(rebuilt by scanning the record deque) onto a dense ``float64`` sliding
window (``telemetry._FloatWindow``) that advances in lockstep with ring
eviction and is ranked as a zero-copy array slice.  These tests pin the
buffer mechanics (growth, in-place compaction, eviction) and the
boundary windows the refactor must not change: empty windows, one-element
windows, and all-shed windows where every percentile ranks over an empty
slice.
"""

import math

import numpy as np
import pytest

from repro.service.control import TelemetryHub, guarded_percentile
from repro.service.control.telemetry import _FloatWindow

from test_telemetry import record


class TestFloatWindow:
    """The dense sliding-window buffer itself."""

    def test_append_evict_view(self):
        window = _FloatWindow(capacity=4)
        for value in (1.0, 2.0, 3.0):
            window.append(value)
        assert list(window.view()) == [1.0, 2.0, 3.0]
        window.pop_oldest()
        assert list(window.view()) == [2.0, 3.0]
        assert len(window) == 2

    def test_view_is_zero_copy(self):
        window = _FloatWindow(capacity=8)
        window.append(1.0)
        window.append(2.0)
        view = window.view()
        assert view.base is window._buf  # a slice, not a copy

    def test_geometric_growth_preserves_live_region(self):
        window = _FloatWindow(capacity=2)
        for value in range(100):
            window.append(float(value))
        assert len(window) == 100
        assert list(window.view()) == [float(v) for v in range(100)]

    def test_compaction_reclaims_evicted_head(self):
        window = _FloatWindow(capacity=8)
        for value in range(8):
            window.append(float(value))
        for _ in range(6):  # leave 2 live, 6 dead
            window.pop_oldest()
        window.append(8.0)  # full buffer, >half dead: compacts in place
        assert window._buf.shape[0] == 8  # no growth happened
        assert list(window.view()) == [6.0, 7.0, 8.0]

    def test_empty_and_single_element_views_rank_correctly(self):
        window = _FloatWindow()
        empty = guarded_percentile(window.view(), 95.0)
        assert math.isnan(empty.value) and empty.n == 0
        assert empty.low_confidence
        window.append(0.25)
        single = guarded_percentile(window.view(), 95.0)
        assert single.value == 0.25 and single.n == 1
        assert single.low_confidence


class TestHubWindowParity:
    """The dense window stays in lockstep with the record ring."""

    def test_snapshot_matches_list_based_ranking(self):
        hub = TelemetryHub(window_s=5.0)
        latencies = []
        for i in range(40):
            t = 0.2 * i
            response = 0.05 + 0.01 * (i % 7)
            shed = i % 5 == 0
            failed = i % 11 == 3
            hub.publish(
                record(
                    f"r{i}", t, response_time_s=response,
                    shed=shed, failed=failed and not shed,
                )
            )
            if not shed and not (failed and not shed):
                latencies.append((t, response))
        now = 0.2 * 39
        snap = hub.snapshot(now)
        survivors = [r for t, r in latencies if t >= now - 5.0]
        for q, estimate in (
            (50.0, snap.p50_latency),
            (95.0, snap.p95_latency),
            (99.0, snap.p99_latency),
        ):
            expect = guarded_percentile(survivors, q)
            assert estimate.value == expect.value
            assert estimate.n == expect.n == len(survivors)

    def test_ring_memory_valve_keeps_lockstep(self):
        hub = TelemetryHub(window_s=100.0, max_records=8)
        for i in range(20):
            hub.publish(record(f"r{i}", 0.1 * i, response_time_s=float(i)))
        assert len(hub) == 8
        snap = hub.snapshot(0.1 * 19)
        assert snap.n == 8
        assert snap.p95_latency.n == 8
        # the window holds exactly the 8 newest samples
        assert list(hub._latencies.view()) == [float(i) for i in range(12, 20)]


class TestAllShedWindows:
    """Windows where admission shed everything: percentiles rank over an
    empty slice and must degrade gracefully, not explode."""

    @pytest.fixture
    def shed_hub(self):
        hub = TelemetryHub(window_s=10.0)
        for i in range(15):
            hub.publish(record(f"s{i}", 0.5 * i, shed=True, tier=0.1))
        return hub

    def test_all_shed_snapshot(self, shed_hub):
        snap = shed_hub.snapshot(7.0)
        assert snap.n == snap.n_shed == 15
        assert snap.n_answered == 0
        assert snap.availability == 0.0
        assert snap.goodput_rps == 0.0
        for estimate in (snap.p50_latency, snap.p95_latency, snap.p99_latency):
            assert math.isnan(estimate.value)
            assert estimate.n == 0
            assert estimate.low_confidence
        assert math.isnan(snap.mean_cost)
        assert snap.payloads == ()

    def test_all_shed_tier_window(self, shed_hub):
        tier = shed_hub.snapshot(7.0).for_tier(0.1)
        assert tier.n == tier.n_shed == 15
        assert math.isnan(tier.p95_latency.value)
        assert tier.p95_latency.low_confidence
        assert math.isnan(tier.mean_cost)

    def test_recovery_after_all_shed_window(self, shed_hub):
        for i in range(30):
            shed_hub.publish(
                record(f"a{i}", 8.0 + 0.1 * i, response_time_s=0.2)
            )
        snap = shed_hub.snapshot(11.0)
        assert snap.n_answered == 30
        assert snap.p95_latency.n == 30
        assert not snap.p95_latency.low_confidence
        assert snap.p95_latency.value == pytest.approx(0.2)


def test_numpy_slice_input_to_guarded_percentile():
    """guarded_percentile accepts array slices without copying semantics
    changing: same estimates as the equivalent list."""
    values = np.linspace(0.01, 1.0, 64)
    view = values[10:50]
    from_view = guarded_percentile(view, 95.0)
    from_list = guarded_percentile(list(view), 95.0)
    assert from_view.value == from_list.value
    assert from_view.n == from_list.n == 40
