"""Gray-failure detection: per-node divergence against pool peers.

A gray node passes every health check while silently serving slow — so
whole-stream SLOs barely move.  The detector compares per-node
service-time EWMAs against the pool median, debounced like an SLO
monitor, and folds a WARN/BREACH contribution into the plane state.
"""

import dataclasses

import pytest

from repro.service.control import (
    ControlPlane,
    ControlSpec,
    GrayDetectionSpec,
    GrayFailureDetector,
    SLOSpec,
    SLOState,
)


def make_spec(**kwargs):
    defaults = dict(
        ratio_threshold=1.5, min_samples=3, detect_after=2, clear_after=2
    )
    defaults.update(kwargs)
    return GrayDetectionSpec(**defaults)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs,match",
    [
        ({"ratio_threshold": 1.0}, "ratio_threshold"),
        ({"ratio_threshold": 0.5}, "ratio_threshold"),
        ({"min_samples": 0}, "min_samples"),
        ({"ewma_alpha": 0.0}, "ewma_alpha"),
        ({"ewma_alpha": 1.5}, "ewma_alpha"),
        ({"detect_after": 0}, "detect_after"),
        ({"clear_after": 0}, "detect_after / clear_after"),
        ({"state_on_detect": SLOState.OK}, "WARN or BREACH"),
    ],
)
def test_invalid_specs_rejected(kwargs, match):
    with pytest.raises(ValueError, match=match):
        make_spec(**kwargs)


# ----------------------------------------------------------------------
# the detector alone
# ----------------------------------------------------------------------
def feed(detector, node_id, service_time_s, n, version="fast"):
    for _ in range(n):
        detector.observe(node_id, version, service_time_s)


def test_divergent_node_is_flagged_after_debounce():
    detector = GrayFailureDetector(make_spec())
    feed(detector, "n1", 0.05, 5)
    feed(detector, "n2", 0.06, 5)
    feed(detector, "n3", 0.25, 5)  # ~4.5x the median

    first = detector.evaluate()
    assert first == [] and detector.n_flagged == 0  # detect_after=2 debounces
    second = detector.evaluate()
    assert detector.n_flagged == 1
    assert detector.state is SLOState.WARN
    (kind, detail), = second
    assert kind == "gray-detected"
    assert "fast" in detail and "n3" not in detail  # no node ids in the log


def test_flag_clears_after_recovery():
    detector = GrayFailureDetector(make_spec(ewma_alpha=0.5))
    feed(detector, "n1", 0.05, 5)
    feed(detector, "n2", 0.05, 5)
    feed(detector, "n3", 0.30, 5)
    detector.evaluate()
    detector.evaluate()
    assert detector.n_flagged == 1

    feed(detector, "n3", 0.05, 20)  # the node recovers
    assert detector.evaluate() == []  # clear_after=2 debounces
    (kind, detail), = detector.evaluate()
    assert kind == "gray-cleared"
    assert detector.n_flagged == 0
    assert detector.state is SLOState.OK


def test_min_samples_gates_participation():
    detector = GrayFailureDetector(make_spec(min_samples=10))
    feed(detector, "n1", 0.05, 4)
    feed(detector, "n2", 0.50, 4)  # wildly divergent, but under-sampled
    for _ in range(5):
        assert detector.evaluate() == []
    assert detector.n_flagged == 0


def test_single_node_pool_is_never_judged():
    detector = GrayFailureDetector(make_spec())
    feed(detector, "only", 9.0, 20)
    for _ in range(5):
        assert detector.evaluate() == []
    assert detector.state is SLOState.OK


def test_healthy_balanced_pool_is_never_flagged():
    detector = GrayFailureDetector(make_spec())
    for i in range(50):
        detector.observe("n1", "fast", 0.05 + 0.001 * (i % 3))
        detector.observe("n2", "fast", 0.05 + 0.001 * ((i + 1) % 3))
    for _ in range(10):
        assert detector.evaluate() == []


def test_breach_mode_contributes_breach_state():
    detector = GrayFailureDetector(
        make_spec(state_on_detect=SLOState.BREACH, detect_after=1)
    )
    feed(detector, "n1", 0.05, 5)
    feed(detector, "n2", 0.30, 5)
    detector.evaluate()
    assert detector.n_flagged >= 1
    assert detector.state is SLOState.BREACH


# ----------------------------------------------------------------------
# plane integration
# ----------------------------------------------------------------------
def make_plane(gray=None):
    return ControlPlane.from_spec(
        ControlSpec(
            window_s=8.0,
            tick_interval_s=0.5,
            slos=(SLOSpec(name="latency", max_p95_latency_s=100.0),),
            gray_detection=gray,
        ),
        seed=0,
    )


def test_observe_node_is_a_noop_without_detection():
    plane = make_plane(gray=None)
    assert plane.gray_detector is None
    plane.observe_node("n1", "fast", 0.5, 1.0)  # must not raise
    plane.on_tick(1.0)
    assert plane.state is SLOState.OK


def test_plane_folds_gray_state_and_logs_transitions():
    plane = make_plane(gray=make_spec())
    for _ in range(5):
        plane.observe_node("n1", "fast", 0.05, 0.5)
        plane.observe_node("n2", "fast", 0.30, 0.5)
    plane.on_tick(1.0)
    assert plane.state is SLOState.OK  # still debouncing
    plane.on_tick(1.5)
    assert plane.state is SLOState.WARN
    entries = [e for e in plane.log if e.kind == "gray-detected"]
    assert len(entries) == 1
    assert entries[0].time_s == 1.5
    assert "n2" not in entries[0].detail

    for _ in range(40):
        plane.observe_node("n2", "fast", 0.05, 2.0)
    plane.on_tick(2.0)
    plane.on_tick(2.5)
    assert plane.state is SLOState.OK
    assert [e.kind for e in plane.log].count("gray-cleared") == 1


def test_gray_breach_arms_admission_state():
    plane = make_plane(
        gray=make_spec(state_on_detect=SLOState.BREACH, detect_after=1)
    )
    for _ in range(5):
        plane.observe_node("n1", "fast", 0.05, 0.5)
        plane.observe_node("n2", "fast", 0.40, 0.5)
    plane.on_tick(1.0)
    assert plane.state is SLOState.BREACH


# ----------------------------------------------------------------------
# end to end: the gray-failure chaos scenario is actually caught
# ----------------------------------------------------------------------
def test_detects_injected_gray_failure_end_to_end():
    from repro.service.simulation import (
        chaos_scenarios,
        run_scenario,
        scenario_measurements,
    )

    toy = scenario_measurements()
    spec = dataclasses.replace(
        chaos_scenarios()["gray-failure"],
        name="gray-detected",
        control=ControlSpec(
            window_s=8.0,
            tick_interval_s=0.5,
            slos=(SLOSpec(name="latency", max_p95_latency_s=5.0),),
            # A 2-node pool's median is the mean of both nodes, so the
            # divergence ratio caps just below 2; 1.4 separates the
            # injected 3.3x slowdown from healthy noise.
            gray_detection=GrayDetectionSpec(
                ratio_threshold=1.4, min_samples=4, detect_after=2, clear_after=3
            ),
        ),
    )
    report = run_scenario(spec, toy, check_invariants=True, engine="legacy")
    kinds = [e.kind for e in report.control_log]
    assert "gray-detected" in kinds
    assert "gray-cleared" in kinds
    detected_at = next(
        e.time_s for e in report.control_log if e.kind == "gray-detected"
    )
    gray = spec.faults[0]
    assert gray.at_s <= detected_at <= gray.until_s  # caught while active

    again = run_scenario(spec, toy, check_invariants=True, engine="legacy")
    assert report.digest() == again.digest()
