"""Closed-loop scenarios end to end: determinism, conservation, no-op-ness.

The three contracts this file pins:

1. **No-op**: ``control=None`` (and even an attached control plane that
   never acts) leaves every digest bit-identical to the open-loop
   engine — the PR 3/4 golden traces stand untouched.
2. **Determinism**: a closed-loop run (shedding, degrading, adapting)
   digests identically for the same spec and seed.
3. **Conservation**: with shedding active, submitted = completed +
   failed + shed, verified by the invariant checker and the report.
"""

from dataclasses import replace

import pytest

from repro.service.control import (
    AdaptorConfig,
    AdmissionSpec,
    ControlSpec,
    SLOSpec,
    default_control_spec,
)
from repro.service.simulation import (
    NodeCrash,
    PoissonArrivals,
    SpikeArrivals,
    canonical_scenarios,
    run_scenario,
    scenario_measurements,
)


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()


@pytest.fixture(scope="module")
def specs():
    return canonical_scenarios()


def spike_spec(specs, control=None):
    return replace(
        specs["spike"],
        arrivals=SpikeArrivals(
            2.0, spike_start_s=10.0, spike_duration_s=15.0, spike_multiplier=8.0
        ),
        n_requests=300,
        control=control,
    )


def shed_control(target=1.5):
    return ControlSpec(
        window_s=5.0,
        tick_interval_s=0.25,
        slos=(
            SLOSpec(
                name="latency",
                max_p95_latency_s=target,
                breach_after=1,
                clear_after=8,
            ),
        ),
        admission=AdmissionSpec(policy="probabilistic", shed_probability=0.85),
    )


def adaptive_control(target=1.5):
    return ControlSpec(
        window_s=8.0,
        tick_interval_s=0.25,
        slos=(
            SLOSpec(
                name="latency",
                max_p95_latency_s=target,
                breach_after=1,
                clear_after=8,
            ),
        ),
        admission=AdmissionSpec(policy="degrade"),
        adaptor=AdaptorConfig(
            refit_interval_s=1.0,
            min_window_samples=15,
            degradation_mode="absolute",
            tolerance_step=0.06,
            max_tolerance=0.30,
            thresholds=(0.3, 0.4, 0.5, 0.6, 0.7),
        ),
    )


class TestNoOp:
    def test_control_none_digest_matches_open_loop(self, toy, specs):
        for name in ("baseline", "node-crash"):
            open_loop = run_scenario(specs[name], toy)
            explicit = run_scenario(
                replace(specs[name], control=None), toy, check_invariants=True
            )
            assert open_loop.digest() == explicit.digest(), name

    def test_unbreached_control_plane_changes_nothing(self, toy, specs):
        # A monitor-only control plane on a healthy scenario: telemetry
        # flows, SLOs never breach, admission never acts — behaviour
        # must digest identically to the open loop.
        quiet = ControlSpec(
            window_s=8.0,
            tick_interval_s=0.5,
            slos=(
                SLOSpec(
                    name="latency",
                    max_p95_latency_s=100.0,
                    breach_after=2,
                    clear_after=2,
                ),
            ),
            admission=AdmissionSpec(policy="probabilistic", shed_probability=1.0),
        )
        open_loop = run_scenario(specs["baseline"], toy)
        closed = run_scenario(
            replace(specs["baseline"], control=quiet), toy, check_invariants=True
        )
        assert open_loop.digest() == closed.digest()
        assert closed.n_shed == 0

    def test_summary_gains_control_fields_without_behaviour_change(
        self, toy, specs
    ):
        report = run_scenario(specs["baseline"], toy)
        summary = report.summary()
        assert summary["n_shed"] == 0
        assert summary["n_degraded"] == 0
        assert summary["n_control_events"] == 0


class TestDeterminism:
    def test_shedding_run_is_seed_deterministic(self, toy, specs):
        spec = spike_spec(specs, control=shed_control())
        first = run_scenario(spec, toy, check_invariants=True)
        second = run_scenario(spec, toy, check_invariants=True)
        assert first.n_shed > 0
        assert first.digest() == second.digest()

    def test_adaptive_run_is_seed_deterministic(self, toy, specs):
        spec = spike_spec(specs, control=adaptive_control())
        first = run_scenario(spec, toy, check_invariants=True)
        second = run_scenario(spec, toy, check_invariants=True)
        assert first.control_log, "the adaptive run must have acted"
        assert first.digest() == second.digest()

    def test_different_seeds_differ(self, toy, specs):
        spec = spike_spec(specs, control=shed_control())
        a = run_scenario(spec, toy)
        b = run_scenario(replace(spec, seed=spec.seed + 1), toy)
        assert a.digest() != b.digest()


class TestConservation:
    def test_shed_requests_conserved_and_unbilled(self, toy, specs):
        spec = spike_spec(specs, control=shed_control())
        report = run_scenario(spec, toy, check_invariants=True)
        assert report.n_requests == spec.n_requests
        n_ok = sum(
            1 for r in report.records if not r.failed and not r.shed
        )
        assert n_ok + report.n_failed + report.n_shed == spec.n_requests
        for r in report.records:
            if r.shed:
                assert not r.failed
                assert r.invocation_cost == 0.0
                assert not r.node_seconds
                assert r.versions_used == ()
        # Shed requests count against availability and goodput.
        assert report.availability == pytest.approx(
            1.0 - (report.n_failed + report.n_shed) / report.n_requests
        )

    def test_degraded_requests_marked_and_answered(self, toy, specs):
        spec = spike_spec(specs, control=adaptive_control())
        report = run_scenario(spec, toy, check_invariants=True)
        degraded = [r for r in report.records if r.degraded]
        assert degraded, "the degrade policy must have acted on this spike"
        for r in degraded:
            assert not r.shed
            if not r.failed:
                assert r.versions_used == ("fast",)

    def test_duplicate_id_rejected_even_when_shed(self, toy):
        # The admitted path raises on duplicate in-flight ids; a shed
        # must not silently double-record the same id instead.
        from repro.service.control.admission import (
            AdmissionAction,
            AdmissionDecision,
        )
        from repro.service.request import ServiceRequest
        from repro.service.simulation import ServingSimulator
        from repro.service.simulation.replay import build_replay_cluster

        class AlwaysShed:
            tick_interval_s = 1.0
            log = ()

            def admit(self, request, now, *, planned):
                return AdmissionDecision(AdmissionAction.SHED, reason="test")

            def observe(self, record, now=None):
                pass

            def on_tick(self, now):
                return None

        cluster = build_replay_cluster(toy, {"fast": 1, "slow": 1})
        simulator = ServingSimulator(
            cluster,
            configuration=canonical_scenarios()["baseline"].configuration,
            control=AlwaysShed(),
        )
        simulator.submit(
            ServiceRequest(request_id="dup", payload="r000"), at_time=0.0
        )
        simulator.submit(
            ServiceRequest(request_id="dup", payload="r000"), at_time=0.5
        )
        # Sheds resolve instantly, so by the second arrival the first is
        # no longer in flight — parity with the admitted path, which
        # also only rejects duplicates while the first is unresolved.
        report = simulator.drain()
        assert report.n_shed == 2

    def test_duplicate_inflight_id_rejected_before_shed(self, toy):
        # A duplicate of a request still in flight must raise exactly as
        # it does on the admitted path — even if admission would shed it.
        from repro.service.control.admission import (
            AdmissionAction,
            AdmissionDecision,
        )
        from repro.service.request import ServiceRequest
        from repro.service.simulation import ServingSimulator
        from repro.service.simulation.replay import build_replay_cluster

        class ShedSecond:
            tick_interval_s = 1.0
            log = ()

            def __init__(self):
                self.seen = 0

            def admit(self, request, now, *, planned):
                self.seen += 1
                if self.seen == 1:
                    return AdmissionDecision(AdmissionAction.ADMIT)
                return AdmissionDecision(AdmissionAction.SHED, reason="test")

            def observe(self, record, now=None):
                pass

            def on_tick(self, now):
                return None

        cluster = build_replay_cluster(toy, {"fast": 1, "slow": 1})
        simulator = ServingSimulator(
            cluster,
            configuration=canonical_scenarios()["baseline"].configuration,
            control=ShedSecond(),
        )
        simulator.submit(
            ServiceRequest(request_id="dup", payload="r000"), at_time=0.0
        )
        # Arrives while the first "dup" is still being served.
        simulator.submit(
            ServiceRequest(request_id="dup", payload="r000"), at_time=0.01
        )
        with pytest.raises(ValueError, match="duplicate request id"):
            simulator.drain()

    def test_closed_loop_under_faults_passes_invariants(self, toy, specs):
        spec = replace(
            specs["node-crash"],
            arrivals=PoissonArrivals(6.0),
            n_requests=200,
            faults=(
                NodeCrash(
                    at_s=6.0, version="slow", node_index=0, recover_at_s=30.0
                ),
            ),
            control=adaptive_control(target=2.5),
        )
        report = run_scenario(spec, toy, check_invariants=True)
        assert report.n_requests == spec.n_requests


class TestClosedLoopWins:
    """The headline behaviours (small-scale mirror of BENCH CTRL)."""

    def test_adaptation_beats_static_on_the_spike(self, toy, specs):
        static = run_scenario(spike_spec(specs), toy)
        adaptive = run_scenario(
            spike_spec(specs, control=adaptive_control()), toy
        )
        ns_static = sum(static.total_node_seconds.values())
        ns_adaptive = sum(adaptive.total_node_seconds.values())
        assert (
            adaptive.goodput_rps > static.goodput_rps
            or (
                adaptive.goodput_rps >= static.goodput_rps * 0.98
                and ns_adaptive < ns_static
            )
        )
        assert adaptive.p95_latency_s < static.p95_latency_s

    def test_shedding_caps_the_tail_on_the_spike(self, toy, specs):
        target = 1.5
        static = run_scenario(spike_spec(specs), toy)
        shed = run_scenario(
            spike_spec(specs, control=shed_control(target)), toy
        )
        assert static.p95_latency_s > target
        assert shed.p95_latency_s <= target

    def test_adaptor_candidates_restricted_to_deployed_versions(self, specs):
        # A measurement table usually covers more versions than any one
        # deployment hosts; a re-fit must never swap onto an ensemble
        # the cluster cannot serve (this crashed before the
        # deployed_versions restriction existed).
        import numpy as np

        from repro.service.measurement import MeasurementSet

        rng = np.random.default_rng(7)
        n = 50
        wide = MeasurementSet(
            service="three-version-toy",
            request_ids=tuple(f"r{i:03d}" for i in range(n)),
            versions=("fast", "mid", "slow"),
            error=np.column_stack(
                [
                    rng.uniform(0.1, 0.3, n),
                    rng.uniform(0.05, 0.15, n),
                    rng.uniform(0.0, 0.05, n),
                ]
            ),
            latency_s=np.column_stack(
                [np.full(n, 0.05), np.full(n, 0.15), np.full(n, 0.4)]
            ),
            confidence=np.column_stack(
                [rng.uniform(0.2, 1.0, n), np.full(n, 0.8), np.full(n, 0.95)]
            ),
            version_instances={
                "fast": "cpu.medium", "mid": "cpu.medium", "slow": "cpu.medium"
            },
        )
        # Pools deploy only fast+slow; "mid" exists in the table alone.
        spec = spike_spec(specs, control=adaptive_control())
        report = run_scenario(spec, wide, check_invariants=True)
        assert report.n_requests == spec.n_requests
        for entry in report.control_log:
            assert "mid" not in entry.detail
        for record in report.records:
            assert "mid" not in record.versions_used

    def test_default_control_spec_runs_all_canonical_scenarios(
        self, toy, specs
    ):
        # Every canonical scenario accepts a closed loop; quick smoke
        # over the two cheapest ones here (the bench sweeps them all).
        for name in ("baseline", "straggler"):
            spec = replace(
                specs[name],
                n_requests=60,
                control=default_control_spec(),
            )
            report = run_scenario(spec, toy, check_invariants=True)
            assert report.n_requests == 60
