"""Admission policies and the online policy adaptor's state machine."""

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import SequentialPolicy, SingleVersionPolicy
from repro.service.control import (
    AdaptorConfig,
    AdmissionAction,
    AdmissionController,
    AdmissionSpec,
    PolicyAdaptor,
    SLOState,
    TelemetryHub,
    degraded_configuration,
)
from repro.service.request import ServiceRequest
from repro.service.simulation import scenario_measurements

from test_telemetry import record


def request(request_id="q", **metadata):
    return ServiceRequest(request_id=request_id, payload="r000", metadata=metadata)


TIERED = EnsembleConfiguration("seq", SequentialPolicy("fast", "slow", 0.6))


class TestAdmission:
    def test_admits_everything_outside_breach(self):
        controller = AdmissionController(
            AdmissionSpec(policy="probabilistic", shed_probability=1.0),
            rng=np.random.default_rng(0),
        )
        for state in (SLOState.OK, SLOState.WARN):
            decision = controller.decide(request(), state=state, planned=TIERED)
            assert decision.action is AdmissionAction.ADMIT
        assert controller.n_shed == 0

    def test_probabilistic_shed_is_seed_deterministic(self):
        def run(seed):
            controller = AdmissionController(
                AdmissionSpec(policy="probabilistic", shed_probability=0.5),
                rng=np.random.default_rng(seed),
            )
            return [
                controller.decide(
                    request(f"q{i}"), state=SLOState.BREACH, planned=TIERED
                ).action
                for i in range(50)
            ]

        assert run(7) == run(7)
        assert AdmissionAction.SHED in run(7)
        assert AdmissionAction.ADMIT in run(7)

    def test_priority_floor(self):
        controller = AdmissionController(
            AdmissionSpec(policy="priority", priority_floor=1.0, default_priority=0.0)
        )
        shed = controller.decide(
            request("low"), state=SLOState.BREACH, planned=TIERED
        )
        kept = controller.decide(
            request("vip", priority=5), state=SLOState.BREACH, planned=TIERED
        )
        assert shed.action is AdmissionAction.SHED
        assert kept.action is AdmissionAction.ADMIT
        # Unparseable priorities fall back to the default (shed here).
        junk = controller.decide(
            request("junk", priority="???"), state=SLOState.BREACH, planned=TIERED
        )
        assert junk.action is AdmissionAction.SHED
        assert controller.n_shed == 2

    def test_degrade_downgrades_to_fast_single(self):
        controller = AdmissionController(AdmissionSpec(policy="degrade"))
        decision = controller.decide(
            request(), state=SLOState.BREACH, planned=TIERED
        )
        assert decision.action is AdmissionAction.DEGRADE
        assert decision.configuration.kind == "single"
        assert decision.configuration.versions == ("fast",)

    def test_degrade_admits_when_already_single(self):
        controller = AdmissionController(AdmissionSpec(policy="degrade"))
        single = EnsembleConfiguration("osfa", SingleVersionPolicy("slow"))
        decision = controller.decide(
            request(), state=SLOState.BREACH, planned=single
        )
        assert decision.action is AdmissionAction.ADMIT
        assert degraded_configuration(single) is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            AdmissionSpec(policy="coinflip")


def breach_snapshot(hub_window=30.0, now=100.0, n=30, latency=3.0):
    hub = TelemetryHub(window_s=hub_window)
    t0 = now - hub_window + 1.0
    for i in range(n):
        hub.publish(
            record(f"r{i:03d}", t0 + i * 0.5, response_time_s=latency)
        )
    return hub.snapshot(now)


def window_snapshot_over(measurements, now=100.0, n=40, latency=3.0):
    """A breach-grade snapshot whose payloads name measured rows."""
    hub = TelemetryHub(window_s=50.0)
    t0 = now - 49.0
    for i in range(n):
        hub.publish(
            record(
                f"q{i:03d}",
                t0 + i,
                response_time_s=latency,
                payload=measurements.request_ids[i % measurements.n_requests],
            ),
            t0 + i,
        )
    return hub.snapshot(now)


class TestAdaptor:
    def config(self, **kw):
        defaults = dict(
            refit_interval_s=1.0,
            min_window_samples=10,
            degradation_mode="absolute",
            tolerance_step=0.06,
            max_tolerance=0.30,
            recover_after=2,
            min_trials=6,
            max_trials=12,
        )
        defaults.update(kw)
        return AdaptorConfig(**defaults)

    def adaptor(self, measurements, **kw):
        return PolicyAdaptor(
            self.config(**kw),
            measurements=measurements,
            anchor=EnsembleConfiguration(
                "anchor_seq", SequentialPolicy("fast", "slow", 0.6)
            ),
            seed=3,
        )

    @pytest.fixture(scope="class")
    def toy(self):
        return scenario_measurements()

    def test_min_window_guardrail(self, toy):
        adaptor = self.adaptor(toy, min_window_samples=50)
        snap = window_snapshot_over(toy, n=10)
        assert adaptor.on_tick(snap, SLOState.BREACH, 100.0) is None
        assert adaptor.events[-1].kind == "refit-skipped"
        # The guardrail still consumed the re-fit slot (no tight loop).
        assert adaptor.on_tick(snap, SLOState.BREACH, 100.1) is None

    def test_widening_converges_to_cheaper_policy(self, toy):
        adaptor = self.adaptor(toy)
        now = 100.0
        swaps = []
        for _ in range(8):
            snap = window_snapshot_over(toy, now=now)
            swap = adaptor.on_tick(snap, SLOState.BREACH, now)
            if swap is not None:
                swaps.append(swap)
            now += 1.0
        assert swaps, "persistent breach must eventually re-fit a swap"
        final = swaps[-1]
        # The cost guard guarantees every swap lowers worst-case cost,
        # so the trajectory ends on something cheaper than the anchor
        # (on the toy geometry: the fast single version).
        assert final.versions == ("fast",)
        assert adaptor.effective_tolerance > 0.0

    def test_swaps_never_increase_worst_case_cost(self, toy):
        adaptor = self.adaptor(toy)
        now = 100.0
        for _ in range(8):
            snap = window_snapshot_over(toy, now=now)
            adaptor.on_tick(snap, SLOState.BREACH, now)
            now += 1.0
        kinds = [e.kind for e in adaptor.events]
        # The first widening step lands on the most-accurate single
        # version (the only config inside a tiny tolerance) — the cost
        # guard must refuse it rather than deepen a capacity breach.
        assert "refit-noimprove" in kinds

    def test_recovery_restores_anchor_and_clears_blacklist(self, toy):
        adaptor = self.adaptor(toy)
        now = 100.0
        while adaptor.active.config_id == adaptor.anchor.config_id:
            snap = window_snapshot_over(toy, now=now)
            adaptor.on_tick(snap, SLOState.BREACH, now)
            now += 1.0
            assert now < 130.0, "never swapped under persistent breach"
        healthy = window_snapshot_over(toy, now=now, latency=0.1)
        restored = None
        while restored is None or restored.config_id != adaptor.anchor.config_id:
            healthy = window_snapshot_over(toy, now=now, latency=0.1)
            swap = adaptor.on_tick(healthy, SLOState.OK, now)
            restored = swap if swap is not None else restored
            now += 1.0
            assert now < 160.0, "never tightened back to the anchor"
        assert adaptor.active.config_id == adaptor.anchor.config_id
        assert adaptor.effective_tolerance == adaptor.config.base_tolerance
        assert any(e.kind == "anchor-restore" for e in adaptor.events) or (
            restored.config_id == adaptor.anchor.config_id
        )

    def test_rollback_on_regression_blacklists_swap(self, toy):
        adaptor = self.adaptor(toy, rollback_margin=1.05)
        now = 100.0
        swap = None
        while swap is None:
            snap = window_snapshot_over(toy, now=now, latency=3.0)
            swap = adaptor.on_tick(snap, SLOState.BREACH, now)
            now += 1.0
        swapped_id = swap.config_id
        # One interval later things are *worse* and still breaching:
        # the judgement must revert and blacklist the swap.
        worse = window_snapshot_over(toy, now=now + 1.0, latency=9.0)
        reverted = adaptor.on_tick(worse, SLOState.BREACH, now + 1.0)
        assert reverted is not None
        assert reverted.config_id == adaptor.anchor.config_id
        assert any(e.kind == "rollback" for e in adaptor.events)
        assert swapped_id in adaptor._rejected
        # The widened tolerance is kept: pressure ratchets, the bad rung
        # is skipped (refit-rejected or a different, wider choice).
        tolerance_after = adaptor.effective_tolerance
        assert tolerance_after > adaptor.config.base_tolerance

    def test_refits_are_deterministic(self, toy):
        def trajectory():
            adaptor = self.adaptor(toy)
            now, ids = 100.0, []
            for _ in range(8):
                snap = window_snapshot_over(toy, now=now)
                swap = adaptor.on_tick(snap, SLOState.BREACH, now)
                ids.append(None if swap is None else swap.config_id)
                now += 1.0
            return ids

        assert trajectory() == trajectory()

    def test_warn_holds_position(self, toy):
        adaptor = self.adaptor(toy)
        snap = window_snapshot_over(toy)
        assert adaptor.on_tick(snap, SLOState.WARN, 100.0) is None
        assert adaptor.active.config_id == adaptor.anchor.config_id
