"""Tests for ensembling policies, outcomes and tier metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import build_pricing, error_degradation, evaluate_policy
from repro.core.outcomes import EnsembleOutcomes, LazyRequestIds
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.service.measurement import MeasurementSet


def _two_version_set(n: int = 40, seed: int = 0) -> MeasurementSet:
    rng = np.random.default_rng(seed)
    confidence = rng.uniform(0.0, 1.0, size=n)
    fast_error = (confidence < 0.45).astype(float)  # unconfident => wrong
    slow_error = np.zeros(n)
    fast_latency = np.full(n, 0.1)
    slow_latency = np.full(n, 0.5)
    return MeasurementSet(
        service="toy",
        request_ids=tuple(f"r{i}" for i in range(n)),
        versions=("fast", "slow"),
        error=np.column_stack([fast_error, slow_error]),
        latency_s=np.column_stack([fast_latency, slow_latency]),
        confidence=np.column_stack([confidence, np.full(n, 0.95)]),
        version_instances={"fast": "cpu.medium", "slow": "cpu.medium"},
    )


class TestSingleVersionPolicy:
    def test_replays_measurements(self):
        ms = _two_version_set()
        outcomes = SingleVersionPolicy("slow").evaluate(ms)
        assert outcomes.mean_error() == 0.0
        assert outcomes.mean_response_time() == pytest.approx(0.5)
        assert outcomes.escalation_rate() == 0.0
        assert outcomes.total_node_seconds() == {"slow": pytest.approx(0.5 * 40)}

    def test_subset_indices(self):
        ms = _two_version_set()
        outcomes = SingleVersionPolicy("fast").evaluate(ms, indices=[0, 1, 2])
        assert outcomes.n_requests == 3

    def test_empty_indices_rejected(self):
        with pytest.raises(ValueError):
            SingleVersionPolicy("fast").evaluate(_two_version_set(), indices=[])


class TestTwoVersionPolicies:
    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialPolicy("fast", "fast", 0.5)
        with pytest.raises(ValueError):
            SequentialPolicy("fast", "slow", 1.5)

    def test_threshold_zero_never_escalates(self):
        ms = _two_version_set()
        outcomes = SequentialPolicy("fast", "slow", 0.0).evaluate(ms)
        assert outcomes.escalation_rate() == 0.0
        assert np.allclose(outcomes.response_time_s, 0.1)

    def test_threshold_one_always_escalates(self):
        ms = _two_version_set()
        outcomes = SequentialPolicy("fast", "slow", 1.0).evaluate(ms)
        assert outcomes.escalation_rate() == 1.0
        assert outcomes.mean_error() == 0.0
        assert np.allclose(outcomes.response_time_s, 0.6)

    def test_sequential_latency_adds_on_escalation(self):
        ms = _two_version_set()
        outcomes = SequentialPolicy("fast", "slow", 0.5).evaluate(ms)
        escalated = outcomes.escalated
        assert np.allclose(outcomes.response_time_s[escalated], 0.6)
        assert np.allclose(outcomes.response_time_s[~escalated], 0.1)

    def test_concurrent_latency_is_max_on_escalation(self):
        ms = _two_version_set()
        outcomes = ConcurrentPolicy("fast", "slow", 0.5).evaluate(ms)
        escalated = outcomes.escalated
        assert np.allclose(outcomes.response_time_s[escalated], 0.5)
        assert np.allclose(outcomes.response_time_s[~escalated], 0.1)

    def test_concurrent_always_spends_accurate_compute(self):
        ms = _two_version_set()
        outcomes = ConcurrentPolicy("fast", "slow", 0.5).evaluate(ms)
        assert outcomes.total_node_seconds()["slow"] == pytest.approx(0.5 * 40)

    def test_early_termination_bounds_wasted_compute(self):
        ms = _two_version_set()
        conc = ConcurrentPolicy("fast", "slow", 0.5).evaluate(ms)
        et = EarlyTerminationPolicy("fast", "slow", 0.5).evaluate(ms)
        assert et.total_node_seconds()["slow"] < conc.total_node_seconds()["slow"]
        # response times are identical between conc and et
        assert np.allclose(et.response_time_s, conc.response_time_s)

    def test_policy_error_between_fast_and_slow(self):
        ms = _two_version_set()
        for policy_cls in (SequentialPolicy, ConcurrentPolicy, EarlyTerminationPolicy):
            outcomes = policy_cls("fast", "slow", 0.5).evaluate(ms)
            assert 0.0 <= outcomes.mean_error() <= ms.mean_error("fast")

    def test_names_and_descriptions_unique(self):
        a = SequentialPolicy("fast", "slow", 0.5)
        b = SequentialPolicy("fast", "slow", 0.7)
        c = ConcurrentPolicy("fast", "slow", 0.5)
        assert len({a.name, b.name, c.name}) == 3
        assert "escalate" in a.describe()

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_escalation_rate_monotone_in_threshold(self, threshold):
        ms = _two_version_set()
        low = SequentialPolicy("fast", "slow", 0.0).evaluate(ms).escalation_rate()
        mid = SequentialPolicy("fast", "slow", threshold).evaluate(ms).escalation_rate()
        high = SequentialPolicy("fast", "slow", 1.0).evaluate(ms).escalation_rate()
        assert low <= mid <= high


class TestOutcomesValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            EnsembleOutcomes(
                policy_name="p",
                request_ids=("r0", "r1"),
                error=np.zeros(3),
                response_time_s=np.zeros(2),
                node_seconds={},
            )

    def test_node_seconds_shape_check(self):
        with pytest.raises(ValueError):
            EnsembleOutcomes(
                policy_name="p",
                request_ids=("r0", "r1"),
                error=np.zeros(2),
                response_time_s=np.zeros(2),
                node_seconds={"v": np.zeros(3)},
            )


class TestErrorDegradation:
    def test_relative(self):
        assert error_degradation(0.11, 0.10) == pytest.approx(0.1)

    def test_absolute(self):
        assert error_degradation(0.11, 0.10, mode="absolute") == pytest.approx(0.01)

    def test_improvement_is_zero(self):
        assert error_degradation(0.05, 0.10) == 0.0

    def test_zero_baseline_falls_back_to_absolute(self):
        assert error_degradation(0.02, 0.0) == pytest.approx(0.02)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            error_degradation(0.1, 0.1, mode="squared")


class TestEvaluatePolicy:
    def test_osfa_baseline_has_zero_reductions(self):
        ms = _two_version_set()
        metrics = evaluate_policy(ms, SingleVersionPolicy("slow"))
        assert metrics.response_time_reduction == pytest.approx(0.0)
        assert metrics.cost_reduction == pytest.approx(0.0)
        assert metrics.error_degradation == 0.0

    def test_fast_single_version_saves_time_but_degrades(self):
        ms = _two_version_set()
        metrics = evaluate_policy(ms, SingleVersionPolicy("fast"))
        assert metrics.response_time_reduction == pytest.approx(0.8)
        assert metrics.error_degradation > 0.0

    def test_sequential_policy_reduces_time_without_degradation(self):
        ms = _two_version_set()
        metrics = evaluate_policy(ms, SequentialPolicy("fast", "slow", 0.5))
        assert metrics.error_degradation == 0.0
        assert metrics.response_time_reduction > 0.0
        assert metrics.escalation_rate < 1.0

    def test_pricing_reflects_instance_prices(self):
        ms = _two_version_set()
        pricing = build_pricing(ms, per_request_fee=0.0)
        metrics = evaluate_policy(ms, SingleVersionPolicy("slow"), pricing=pricing)
        expected = 0.5 * ms.instance_for("slow").price_per_second * pricing.markup
        assert metrics.mean_invocation_cost == pytest.approx(expected)


class TestLazyRequestIds:
    """Policy outcomes resolve request ids lazily but behave like tuples."""

    def test_policy_outcomes_expose_sequence_semantics(self):
        ms = _two_version_set()
        outcomes = SequentialPolicy("fast", "slow", 0.5).evaluate(ms, [2, 0, 1])
        ids = outcomes.request_ids
        assert isinstance(ids, LazyRequestIds)
        assert len(ids) == 3
        assert ids[0] == ms.request_ids[2]
        assert ids[-1] == ms.request_ids[1]
        assert tuple(ids) == (
            ms.request_ids[2],
            ms.request_ids[0],
            ms.request_ids[1],
        )
        assert ids == tuple(ids)  # comparable against plain tuples
        assert ids[:2] == tuple(ids)[:2]

    def test_materialisation_is_cached(self):
        ms = _two_version_set()
        ids = SingleVersionPolicy("fast").evaluate(ms).request_ids
        assert ids.materialize() is ids.materialize()

    def test_full_evaluation_covers_all_requests(self):
        ms = _two_version_set()
        outcomes = SingleVersionPolicy("fast").evaluate(ms)
        assert tuple(outcomes.request_ids) == ms.request_ids
