"""Tests for configuration enumeration, tier simulation and tiers."""

import pytest

from repro.core.configuration import DEFAULT_THRESHOLDS, enumerate_configurations
from repro.core.simulator import simulate
from repro.core.tiers import ToleranceTier, default_tolerance_grid
from repro.service.request import Objective


class TestToleranceTier:
    def test_label(self):
        tier = ToleranceTier(0.01, Objective.COST)
        assert tier.label == "1.0% / cost"

    def test_admits(self):
        tier = ToleranceTier(0.05)
        assert tier.admits(0.049)
        assert tier.admits(0.05)
        assert not tier.admits(0.051)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ToleranceTier(-0.01)


class TestToleranceGrid:
    def test_paper_grid(self):
        grid = default_tolerance_grid()
        assert len(grid) == 100
        assert grid[0] == pytest.approx(0.001)
        assert grid[-1] == pytest.approx(0.10)

    def test_custom_grid(self):
        assert default_tolerance_grid(maximum=0.02, step=0.01) == [0.01, 0.02]

    def test_validation(self):
        with pytest.raises(ValueError):
            default_tolerance_grid(maximum=0.0)
        with pytest.raises(ValueError):
            default_tolerance_grid(maximum=0.01, step=0.02)


class TestEnumerateConfigurations:
    def test_design_space_size(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements, thresholds=(0.4, 0.6), policy_kinds=("single", "seq")
        )
        # 5 single versions + 4 fast versions x 2 thresholds
        assert len(configurations) == 5 + 4 * 2

    def test_config_ids_unique(self, ic_measurements):
        configurations = enumerate_configurations(ic_measurements)
        ids = [c.config_id for c in configurations]
        assert len(set(ids)) == len(ids)

    def test_default_space_uses_default_thresholds(self, ic_measurements):
        configurations = enumerate_configurations(ic_measurements)
        expected = 5 + 3 * 4 * len(DEFAULT_THRESHOLDS)
        assert len(configurations) == expected

    def test_two_version_configs_escalate_to_most_accurate(self, ic_measurements):
        accurate = ic_measurements.most_accurate_version()
        for configuration in enumerate_configurations(ic_measurements):
            if configuration.kind != "single":
                assert configuration.versions[1] == accurate

    def test_explicit_fast_versions(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements,
            thresholds=(0.5,),
            policy_kinds=("seq",),
            fast_versions=["ic_cpu_squeezenet"],
        )
        assert len(configurations) == 1
        assert configurations[0].versions[0] == "ic_cpu_squeezenet"

    def test_validation(self, ic_measurements):
        with pytest.raises(ValueError):
            enumerate_configurations(ic_measurements, policy_kinds=("magic",))
        with pytest.raises(ValueError):
            enumerate_configurations(ic_measurements, thresholds=(1.5,))
        with pytest.raises(ValueError):
            enumerate_configurations(ic_measurements, accurate_version="nope")
        with pytest.raises(ValueError):
            enumerate_configurations(ic_measurements, fast_versions=["nope"])

    def test_describe_mentions_policy(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements, thresholds=(0.5,), policy_kinds=("seq",)
        )
        assert "escalate" in configurations[0].describe()


class TestSimulate:
    def test_baseline_simulation_has_no_gain(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements, policy_kinds=("single",)
        )
        baseline = next(
            c
            for c in configurations
            if c.versions == (ic_measurements.most_accurate_version(),)
        )
        result = simulate(ic_measurements, baseline)
        assert result.error_degradation == 0.0
        assert result.response_time_reduction == pytest.approx(0.0)
        assert result.config_id == baseline.config_id

    def test_fast_single_version_simulation(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements, policy_kinds=("single",)
        )
        fastest = next(
            c
            for c in configurations
            if c.versions == (ic_measurements.fastest_version(),)
        )
        result = simulate(ic_measurements, fastest)
        assert result.error_degradation > 0.0
        assert result.response_time_reduction > 0.0

    def test_objective_value_switch(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements, policy_kinds=("single",)
        )
        result = simulate(ic_measurements, configurations[0])
        assert result.objective_value("response-time") == result.mean_response_time_s
        assert result.objective_value("cost") == result.mean_invocation_cost
        with pytest.raises(ValueError):
            result.objective_value("accuracy")

    def test_indices_subset(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements, policy_kinds=("single",)
        )
        result = simulate(ic_measurements, configurations[0], indices=range(100))
        assert result.mean_response_time_s > 0.0
