"""Tests for the guarantee audit, learned-escalation baseline and live API."""

import numpy as np
import pytest

from repro.core.api import ToleranceTiersService
from repro.core.configuration import EnsembleConfiguration, enumerate_configurations
from repro.core.guarantees import audit_guarantees
from repro.core.learned_router import LogisticEscalationPolicy
from repro.core.metrics import evaluate_policy
from repro.core.policies import SequentialPolicy, SingleVersionPolicy
from repro.core.router import RoutingRuleTable, TierRouter
from repro.service.cluster import ClusterDeployment, NodePool
from repro.service.instances import get_instance_type
from repro.service.node import CallableVersion, VersionResult
from repro.service.request import Objective, ServiceRequest


class TestGuaranteeAudit:
    @pytest.fixture(scope="class")
    def audit(self, request):
        ic_measurements = request.getfixturevalue("ic_measurements")
        configurations = enumerate_configurations(
            ic_measurements,
            thresholds=(0.4, 0.5, 0.6),
            fast_versions=["ic_cpu_squeezenet"],
        )
        return audit_guarantees(
            ic_measurements,
            tolerances=[0.01, 0.05, 0.10],
            objective="response-time",
            folds=3,
            confidence=0.95,
            seed=2,
            configurations=configurations,
            generator_kwargs={"min_trials": 6, "max_trials": 25},
        )

    def test_structure(self, audit):
        assert audit.folds == 3
        assert audit.objective is Objective.RESPONSE_TIME
        assert len(audit.rows) == 3
        assert [row.tolerance for row in audit.rows] == [0.01, 0.05, 0.10]

    def test_no_violations(self, audit):
        # The paper's key claim: guarantees hold on held-out traffic.
        assert audit.total_violations == 0
        for row in audit.rows:
            assert not row.violated
            assert row.worst_degradation <= row.tolerance + 1e-9

    def test_savings_grow_with_tolerance(self, audit):
        reductions = [row.mean_response_time_reduction for row in audit.rows]
        assert reductions[0] <= reductions[-1] + 1e-9

    def test_row_lookup(self, audit):
        assert audit.row_for(0.05).tolerance == 0.05
        with pytest.raises(KeyError):
            audit.row_for(0.33)

    def test_configurations_recorded(self, audit):
        for row in audit.rows:
            assert len(row.configurations_used) >= 1


class TestLogisticEscalationPolicy:
    def test_fit_and_evaluate(self, ic_measurements):
        policy = LogisticEscalationPolicy("ic_cpu_squeezenet", "ic_cpu_resnet50")
        policy.fit(ic_measurements, indices=range(1000))
        outcomes = policy.evaluate(ic_measurements, indices=range(1000, 2000))
        assert 0.0 < outcomes.escalation_rate() < 1.0
        metrics = evaluate_policy(ic_measurements, policy, indices=range(1000, 2000))
        assert metrics.mean_error <= ic_measurements.subset(
            range(1000, 2000)
        ).mean_error("ic_cpu_squeezenet")

    def test_predictor_monotone_in_confidence(self, ic_measurements):
        policy = LogisticEscalationPolicy("ic_cpu_squeezenet", "ic_cpu_resnet50")
        policy.fit(ic_measurements)
        low, high = policy.predict_error_probability(np.array([0.1, 0.9]))
        assert low > high  # low confidence => more likely wrong

    def test_requires_fit(self, ic_measurements):
        policy = LogisticEscalationPolicy("ic_cpu_squeezenet", "ic_cpu_resnet50")
        with pytest.raises(RuntimeError):
            policy.evaluate(ic_measurements)
        with pytest.raises(RuntimeError):
            policy.predict_error_probability(np.array([0.5]))

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticEscalationPolicy("a", "a")
        with pytest.raises(ValueError):
            LogisticEscalationPolicy("a", "b", escalation_probability=1.2)


def _version(name, compute_seconds, confidence):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version=name,
            output=f"{name}({payload})",
            error=None,
            confidence=confidence,
            compute_seconds=compute_seconds,
        )

    return CallableVersion(name, handler)


class TestToleranceTiersService:
    def _service(self, fast_confidence: float) -> ToleranceTiersService:
        instance = get_instance_type("cpu.medium")
        cluster = ClusterDeployment(
            {
                "fast": NodePool(_version("fast", 0.1, fast_confidence), instance),
                "slow": NodePool(_version("slow", 0.5, 0.95), instance),
            }
        )
        baseline = EnsembleConfiguration("cfg_base", SingleVersionPolicy("slow"))
        seq = EnsembleConfiguration("cfg_seq", SequentialPolicy("fast", "slow", 0.5))
        table = RoutingRuleTable(
            objective=Objective.RESPONSE_TIME,
            baseline=baseline,
            rules={0.05: seq},
        )
        return ToleranceTiersService(cluster, TierRouter({Objective.RESPONSE_TIME: table}))

    def test_zero_tolerance_served_by_baseline(self):
        service = self._service(fast_confidence=0.9)
        response = service.handle(
            ServiceRequest(request_id="r1", payload="x", tolerance=0.0)
        )
        assert response.versions_used == ("slow",)

    def test_confident_fast_result_served_directly(self):
        service = self._service(fast_confidence=0.9)
        response = service.handle(
            ServiceRequest(request_id="r2", payload="x", tolerance=0.05)
        )
        assert response.versions_used == ("fast",)
        assert response.response_time_s == pytest.approx(0.1)

    def test_unconfident_fast_result_escalates(self):
        service = self._service(fast_confidence=0.2)
        response = service.handle(
            ServiceRequest(request_id="r3", payload="x", tolerance=0.05)
        )
        assert response.versions_used == ("fast", "slow")
        assert response.result == "slow(x)"
        assert response.response_time_s == pytest.approx(0.6)

    def test_http_style_interface(self):
        service = self._service(fast_confidence=0.9)
        response = service.handle_http(
            "r4", "payload", {"Tolerance": "0.05", "Objective": "response-time"}
        )
        assert response.tier == pytest.approx(0.05)

    def test_missing_version_rejected(self):
        instance = get_instance_type("cpu.medium")
        cluster = ClusterDeployment(
            {"slow": NodePool(_version("slow", 0.5, 0.9), instance)}
        )
        baseline = EnsembleConfiguration("cfg_base", SingleVersionPolicy("slow"))
        seq = EnsembleConfiguration("cfg_seq", SequentialPolicy("fast", "slow", 0.5))
        table = RoutingRuleTable(
            objective=Objective.RESPONSE_TIME, baseline=baseline, rules={0.05: seq}
        )
        with pytest.raises(ValueError):
            ToleranceTiersService(cluster, TierRouter({Objective.RESPONSE_TIME: table}))
