"""Tests for bootstrapping, the routing-rule generator and the tier router."""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_configuration
from repro.core.configuration import enumerate_configurations
from repro.core.metrics import build_pricing, evaluate_policy
from repro.core.policies import SingleVersionPolicy
from repro.core.router import RoutingRuleTable, TierRouter
from repro.core.rule_generator import RoutingRuleGenerator
from repro.core.tiers import default_tolerance_grid
from repro.service.request import Objective
from repro.stats.confidence import ConfidenceTest


@pytest.fixture(scope="module")
def small_space(request):
    """A compact design space over the IC measurements (fast to bootstrap)."""
    ic_measurements = request.getfixturevalue("ic_measurements")
    configurations = enumerate_configurations(
        ic_measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet"],
    )
    return ic_measurements, configurations


@pytest.fixture(scope="module")
def generator(small_space):
    measurements, configurations = small_space
    return RoutingRuleGenerator(
        measurements,
        configurations,
        confidence=0.95,
        seed=5,
        min_trials=8,
        max_trials=40,
    )


class TestBootstrapConfiguration:
    def test_worst_case_at_least_full_sample_value(self, small_space):
        measurements, configurations = small_space
        baseline_version = measurements.most_accurate_version()
        config = configurations[0]
        estimate = bootstrap_configuration(
            measurements,
            config,
            confidence_test=ConfidenceTest(confidence=0.9, min_trials=5, max_trials=30),
            rng=np.random.default_rng(0),
            pricing=build_pricing(measurements),
            baseline_version=baseline_version,
        )
        assert estimate.n_trials >= 5
        assert estimate.config_id == config.config_id
        assert estimate.error_degradation >= 0.0
        assert estimate.mean_response_time_s > 0.0

    def test_rejects_bad_fraction(self, small_space):
        measurements, configurations = small_space
        with pytest.raises(ValueError):
            bootstrap_configuration(
                measurements,
                configurations[0],
                confidence_test=ConfidenceTest(),
                rng=np.random.default_rng(0),
                sample_fraction=0.0,
            )

    def test_objective_value_accessor(self, generator):
        estimate = generator.results[0]
        assert estimate.objective_value("response-time") == estimate.mean_response_time_s
        with pytest.raises(ValueError):
            estimate.objective_value("happiness")


class TestRoutingRuleGenerator:
    def test_bootstraps_every_configuration(self, generator):
        assert len(generator.results) == len(generator.configurations)

    def test_estimate_lookup(self, generator):
        config = generator.configurations[3]
        assert generator.estimate_for(config.config_id).config_id == config.config_id
        with pytest.raises(KeyError):
            generator.estimate_for("cfg_does_not_exist")

    def test_empty_space_rejected(self, small_space):
        measurements, _ = small_space
        with pytest.raises(ValueError):
            RoutingRuleGenerator(measurements, [])

    def test_generate_respects_tolerances(self, generator):
        table = generator.generate([0.0, 0.02, 0.05, 0.10], Objective.RESPONSE_TIME)
        for tolerance, configuration in table.rules.items():
            estimate = generator.estimate_for(configuration.config_id)
            assert estimate.error_degradation <= tolerance + 1e-12

    def test_larger_tolerance_never_slower(self, generator):
        table = generator.generate(
            default_tolerance_grid(maximum=0.1, step=0.01), "response-time"
        )
        worst_times = [
            generator.estimate_for(table.rules[t].config_id).mean_response_time_s
            for t in sorted(table.rules)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(worst_times, worst_times[1:]))

    def test_zero_tolerance_uses_baseline_accuracy(self, generator, small_space):
        measurements, _ = small_space
        table = generator.generate([0.0], "response-time")
        configuration = table.config_for(0.0)
        metrics = evaluate_policy(measurements, configuration.policy)
        assert metrics.error_degradation == pytest.approx(0.0, abs=1e-9)

    def test_cost_objective_selects_cheaper_configs(self, generator, small_space):
        measurements, _ = small_space
        pricing = build_pricing(measurements)
        time_table = generator.generate([0.10], "response-time")
        cost_table = generator.generate([0.10], "cost")
        time_cfg = time_table.config_for(0.10)
        cost_cfg = cost_table.config_for(0.10)
        cost_of = lambda cfg: evaluate_policy(  # noqa: E731
            measurements, cfg.policy, pricing=pricing
        ).mean_invocation_cost
        assert cost_of(cost_cfg) <= cost_of(time_cfg) + 1e-12

    def test_rejects_negative_tolerance(self, generator):
        with pytest.raises(ValueError):
            generator.generate([-0.01], "cost")


class TestRoutingRuleTable:
    def test_config_for_picks_largest_covered_tier(self, generator):
        table = generator.generate([0.01, 0.05], "response-time")
        assert table.config_for(0.03) is table.rules[0.01]
        assert table.config_for(0.07) is table.rules[0.05]

    def test_tighter_than_all_rules_falls_back_to_baseline(self, generator):
        table = generator.generate([0.05], "response-time")
        assert table.config_for(0.0) is table.baseline

    def test_estimate_for(self, generator):
        table = generator.generate([0.05], "response-time")
        assert table.estimate_for(0.06) is not None
        assert table.estimate_for(0.0) is None

    def test_rejects_negative(self, generator):
        table = generator.generate([0.05], "response-time")
        with pytest.raises(ValueError):
            table.config_for(-1.0)

    def test_tolerances_property_sorted(self, generator):
        table = generator.generate([0.05, 0.01, 0.03], "cost")
        assert list(table.tolerances) == sorted(table.tolerances)


class TestTierRouter:
    def test_routes_by_objective(self, generator):
        router = TierRouter(
            {
                Objective.RESPONSE_TIME: generator.generate([0.05], "response-time"),
                Objective.COST: generator.generate([0.05], "cost"),
            }
        )
        assert set(router.objectives) == {Objective.RESPONSE_TIME, Objective.COST}
        cfg = router.route(0.05, "response-time")
        assert cfg is router.table_for(Objective.RESPONSE_TIME).rules[0.05]

    def test_missing_objective(self, generator):
        router = TierRouter(
            {Objective.RESPONSE_TIME: generator.generate([0.05], "response-time")}
        )
        with pytest.raises(KeyError):
            router.route(0.05, Objective.COST)

    def test_rejects_empty_tables(self):
        with pytest.raises(ValueError):
            TierRouter({})

    def test_rejects_mismatched_table(self, generator):
        table = generator.generate([0.05], "cost")
        with pytest.raises(ValueError):
            TierRouter({Objective.RESPONSE_TIME: table})
