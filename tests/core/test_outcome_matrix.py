"""Equivalence tests: the vectorized outcome-matrix path vs the scalar oracle.

The outcome-matrix engine exists purely for speed; these tests pin its
contract — for the same seed it must reproduce the legacy scalar path's
results exactly (trial metrics, worst-case estimates, rng consumption and
emitted rule tables), across all four policy kinds and the threshold grid.
"""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_configuration
from repro.core.configuration import EnsembleConfiguration, enumerate_configurations
from repro.core.metrics import build_pricing
from repro.core.outcome_matrix import OutcomeMatrix
from repro.core.policies import EnsemblePolicy, SingleVersionPolicy
from repro.core.rule_generator import RoutingRuleGenerator
from repro.core.simulator import simulate
from repro.stats.confidence import ConfidenceTest
from repro.stats.resampling import subsample_indices

TOLERANCE = 1e-12


@pytest.fixture(scope="module")
def space(request):
    """Measurements plus a design space covering all four policy kinds."""
    measurements = request.getfixturevalue("ic_measurements")
    configurations = enumerate_configurations(
        measurements,
        thresholds=(0.4, 0.55, 0.7),
        fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet"],
    )
    return measurements, configurations


@pytest.fixture(scope="module")
def matrix(space):
    measurements, configurations = space
    return OutcomeMatrix.build(measurements, configurations)


class TestTrialMetricsEquivalence:
    def test_matches_simulate_for_every_configuration(self, space, matrix):
        """Vectorized per-trial metrics == scalar simulate(), bit for bit."""
        measurements, configurations = space
        pricing = build_pricing(measurements)
        baseline = measurements.most_accurate_version()
        rng = np.random.default_rng(123)
        kinds_seen = set()
        for configuration in configurations:
            kinds_seen.add(configuration.kind)
            indices = np.stack(
                [
                    subsample_indices(measurements.n_requests, 200, rng=rng)
                    for _ in range(4)
                ]
            )
            block = matrix.trial_metrics(configuration.config_id, indices)
            for row in range(indices.shape[0]):
                scalar = simulate(
                    measurements,
                    configuration,
                    indices=indices[row],
                    pricing=pricing,
                    baseline_version=baseline,
                )
                assert block.error_degradation[row] == pytest.approx(
                    scalar.error_degradation, abs=TOLERANCE
                )
                assert block.mean_response_time_s[row] == pytest.approx(
                    scalar.mean_response_time_s, abs=TOLERANCE
                )
                assert block.mean_invocation_cost[row] == pytest.approx(
                    scalar.mean_invocation_cost, rel=TOLERANCE
                )
        assert kinds_seen == {"single", "seq", "conc", "et"}

    def test_trial_metrics_bitwise_identical(self, space, matrix):
        """On this platform the fast path is exactly identical, which is
        what keeps the bootstrap's stopping decisions aligned."""
        measurements, configurations = space
        pricing = build_pricing(measurements)
        baseline = measurements.most_accurate_version()
        rng = np.random.default_rng(7)
        for configuration in configurations[:8]:
            indices = subsample_indices(measurements.n_requests, 200, rng=rng)
            block = matrix.trial_metrics(configuration.config_id, indices)
            scalar = simulate(
                measurements,
                configuration,
                indices=indices,
                pricing=pricing,
                baseline_version=baseline,
            )
            assert float(block.error_degradation[0]) == scalar.error_degradation
            assert float(block.mean_response_time_s[0]) == scalar.mean_response_time_s
            assert float(block.mean_invocation_cost[0]) == scalar.mean_invocation_cost

    def test_single_trial_vector_accepted(self, space, matrix):
        measurements, configurations = space
        metrics = matrix.trial_metrics(
            configurations[0].config_id, np.arange(50)
        )
        assert metrics.error_degradation.shape == (1,)

    def test_rejects_empty_and_unknown(self, space, matrix):
        _, configurations = space
        with pytest.raises(ValueError):
            matrix.trial_metrics(
                configurations[0].config_id, np.empty((2, 0), dtype=int)
            )
        with pytest.raises(KeyError):
            matrix.columns_for("cfg_nope")


class TestBootstrapEquivalence:
    def test_estimates_and_rng_state_match(self, space, matrix):
        """Fast and scalar bootstraps agree on every estimate field, the
        trial count, and — critically — the generator state they leave
        behind (so later configurations see identical draws)."""
        measurements, configurations = space
        pricing = build_pricing(measurements)
        baseline = measurements.most_accurate_version()
        test = ConfidenceTest(confidence=0.95, min_trials=6, max_trials=25)
        for configuration in configurations:
            rng_a = np.random.default_rng(42)
            rng_b = np.random.default_rng(42)
            scalar = bootstrap_configuration(
                measurements,
                configuration,
                confidence_test=test,
                rng=rng_a,
                pricing=pricing,
                baseline_version=baseline,
            )
            fast = bootstrap_configuration(
                measurements,
                configuration,
                confidence_test=test,
                rng=rng_b,
                pricing=pricing,
                baseline_version=baseline,
                outcome_matrix=matrix,
            )
            assert fast.n_trials == scalar.n_trials
            assert fast.error_degradation == pytest.approx(
                scalar.error_degradation, abs=TOLERANCE
            )
            assert fast.mean_response_time_s == pytest.approx(
                scalar.mean_response_time_s, abs=TOLERANCE
            )
            assert fast.mean_invocation_cost == pytest.approx(
                scalar.mean_invocation_cost, rel=TOLERANCE
            )
            assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_rejects_mismatched_matrix_inputs(self, space, matrix):
        """The fast path refuses inputs the matrix was not built for."""
        measurements, configurations = space
        test = ConfidenceTest(confidence=0.95, min_trials=6, max_trials=25)
        kw = dict(confidence_test=test, outcome_matrix=matrix)
        with pytest.raises(ValueError, match="degradation_mode"):
            bootstrap_configuration(
                measurements,
                configurations[0],
                rng=np.random.default_rng(0),
                degradation_mode="absolute",
                **kw,
            )
        with pytest.raises(ValueError, match="pricing"):
            bootstrap_configuration(
                measurements,
                configurations[0],
                rng=np.random.default_rng(0),
                pricing=build_pricing(measurements, markup=5.0),
                **kw,
            )
        # an equal-valued (not identical) pricing is accepted
        bootstrap_configuration(
            measurements,
            configurations[0],
            rng=np.random.default_rng(0),
            pricing=build_pricing(measurements),
            **kw,
        )

    def test_small_trial_blocks_change_nothing(self, space, matrix):
        """The block size is a throughput knob only."""
        measurements, configurations = space
        test = ConfidenceTest(confidence=0.95, min_trials=6, max_trials=25)
        results = []
        for trial_block in (1, 3, 64):
            rng = np.random.default_rng(9)
            results.append(
                bootstrap_configuration(
                    measurements,
                    configurations[5],
                    confidence_test=test,
                    rng=rng,
                    outcome_matrix=matrix,
                    trial_block=trial_block,
                )
            )
        assert all(r == results[0] for r in results[1:])


class TestGeneratorEquivalence:
    @pytest.fixture(scope="class")
    def generators(self, space):
        measurements, configurations = space
        kw = dict(confidence=0.999, seed=5, min_trials=8, max_trials=30)
        return (
            RoutingRuleGenerator(
                measurements, configurations, engine="legacy", **kw
            ),
            RoutingRuleGenerator(
                measurements, configurations, engine="vectorized", **kw
            ),
        )

    def test_worst_case_estimates_match(self, generators):
        legacy, fast = generators
        for a, b in zip(legacy.results, fast.results):
            assert a.config_id == b.config_id
            assert a.n_trials == b.n_trials
            assert a.error_degradation == pytest.approx(
                b.error_degradation, abs=TOLERANCE
            )
            assert a.mean_response_time_s == pytest.approx(
                b.mean_response_time_s, abs=TOLERANCE
            )
            assert a.mean_invocation_cost == pytest.approx(
                b.mean_invocation_cost, rel=TOLERANCE
            )

    def test_rule_tables_identical(self, generators):
        """The emitted rule tables — the generator's actual product — are
        identical for both engines, for both objectives."""
        legacy, fast = generators
        for objective in ("response-time", "cost"):
            table_a = legacy.generate([0.0, 0.01, 0.05, 0.10], objective)
            table_b = fast.generate([0.0, 0.01, 0.05, 0.10], objective)
            assert {
                t: c.config_id for t, c in table_a.rules.items()
            } == {t: c.config_id for t, c in table_b.rules.items()}

    def test_same_seed_same_rule_table(self, space):
        """Determinism: constructing twice with one seed gives one table."""
        measurements, configurations = space
        kw = dict(confidence=0.999, seed=5, min_trials=8, max_trials=30)
        tables = []
        for _ in range(2):
            generator = RoutingRuleGenerator(
                measurements, configurations, engine="vectorized", **kw
            )
            table = generator.generate([0.01, 0.05, 0.10], "response-time")
            tables.append(
                {t: c.config_id for t, c in table.rules.items()}
            )
        assert tables[0] == tables[1]

    def test_rejects_unknown_engine(self, space):
        measurements, configurations = space
        with pytest.raises(ValueError):
            RoutingRuleGenerator(measurements, configurations, engine="warp")


class TestZeroVarianceMetrics:
    """Degenerate bootstrap inputs: metrics that never vary across trials.

    A measurement table with constant per-version latency, error and
    confidence makes every subsample identical, so all three metric
    columns are zero-variance and the confidence test must fall through
    to its constant-sample rule (no division by zero anywhere on the
    path).  Both engines must agree bit-for-bit, including the trial
    count the constant rule implies.
    """

    @pytest.fixture(scope="class")
    def constant_space(self):
        from repro.service.measurement import MeasurementSet

        n = 40
        ids = tuple(f"c{i:02d}" for i in range(n))
        measurements = MeasurementSet(
            service="constant",
            request_ids=ids,
            versions=("fast", "slow"),
            error=np.column_stack([np.full(n, 0.2), np.zeros(n)]),
            latency_s=np.column_stack([np.full(n, 0.05), np.full(n, 0.4)]),
            confidence=np.column_stack([np.full(n, 0.9), np.full(n, 0.95)]),
            version_instances={"fast": "cpu.medium", "slow": "cpu.medium"},
        )
        configurations = enumerate_configurations(
            measurements, thresholds=(0.5,), fast_versions=["fast"]
        )
        return measurements, configurations

    def test_engines_agree_on_constant_metrics(self, constant_space):
        measurements, configurations = constant_space
        kwargs = dict(confidence=0.999, seed=3, min_trials=10, max_trials=60)
        vectorized = RoutingRuleGenerator(
            measurements, configurations, engine="vectorized", **kwargs
        )
        legacy = RoutingRuleGenerator(
            measurements, configurations, engine="legacy", **kwargs
        )
        for a, b in zip(vectorized.results, legacy.results):
            assert a.config_id == b.config_id
            assert a.n_trials == b.n_trials
            assert a.error_degradation == b.error_degradation
            assert a.mean_response_time_s == b.mean_response_time_s
            assert a.mean_invocation_cost == b.mean_invocation_cost
        # the constant-sample rule demands min(ceil(1/(1-0.999)), 30)
        # trials, which dominates min_trials here
        assert all(e.n_trials == 30 for e in vectorized.results)


class _OpaquePolicy(EnsemblePolicy):
    """A policy the outcome matrix cannot expand (custom evaluate)."""

    kind = "opaque"

    def __init__(self, version: str) -> None:
        self._inner = SingleVersionPolicy(version)

    @property
    def name(self):
        return f"opaque[{self._inner.version}]"

    @property
    def versions(self):
        return self._inner.versions

    def evaluate(self, measurements, indices=None):
        return self._inner.evaluate(measurements, indices)


class TestUnsupportedPolicies:
    def test_matrix_skips_unsupported(self, space):
        measurements, _ = space
        opaque = EnsembleConfiguration("cfg_opq", _OpaquePolicy("ic_cpu_vgg16"))
        matrix = OutcomeMatrix.build(measurements, [opaque])
        assert "cfg_opq" not in matrix
        assert not OutcomeMatrix.supports(opaque.policy)

    def test_generator_falls_back_to_scalar_path(self, space):
        """A design space mixing supported and opaque policies still
        bootstraps — opaque configurations ride the scalar oracle."""
        measurements, configurations = space
        mixed = list(configurations[:3]) + [
            EnsembleConfiguration("cfg_opq", _OpaquePolicy("ic_cpu_vgg16"))
        ]
        generator = RoutingRuleGenerator(
            measurements,
            mixed,
            confidence=0.9,
            seed=3,
            min_trials=5,
            max_trials=12,
        )
        assert len(generator.results) == 4
        assert generator.estimate_for("cfg_opq").n_trials >= 5
