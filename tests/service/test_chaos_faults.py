"""Behavioural tests for the chaos vocabulary, fault by fault.

Each chaos event must do what it says on the virtual clock — latency
inflation and silent confidence loss for gray failures, load-conditional
peer failures for cascades, correlated bursts and budget-bounded
amplification for retry storms, paired warmup windows for cold starts,
and held-then-released surges for thundering herds — all under the
legacy oracle with the invariant checker on.

Chaos runs always execute on the legacy engine (faults make the columnar
fast path ineligible; the differential suite verifies the fallback), so
this module shadows the suite-wide engine matrix to run once.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.service.simulation import (
    ColdStartWave,
    GrayFailure,
    PoissonArrivals,
    RetryPolicy,
    ThunderingHerd,
    ThunderingHerdArrivals,
    chaos_scenarios,
    run_scenario,
    scenario_measurements,
)


@pytest.fixture
def sim_engine():
    """Shadow the engine matrix: chaos always runs the legacy oracle."""
    return None


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()


@pytest.fixture(scope="module")
def chaos():
    return chaos_scenarios()


def run_legacy(spec, toy):
    return run_scenario(spec, toy, check_invariants=True, engine="legacy")


def fault_kinds(report):
    return [entry.kind for entry in report.fault_log]


# ----------------------------------------------------------------------
# all five, generically: legacy + invariants + determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(chaos_scenarios()))
def test_chaos_scenario_runs_deterministically_under_invariants(name, chaos, toy):
    spec = chaos[name]
    first = run_legacy(spec, toy)
    second = run_legacy(spec, toy)
    assert first.digest() == second.digest()
    assert first.n_requests == spec.n_requests


@pytest.mark.parametrize("name", sorted(chaos_scenarios()))
def test_chaos_changes_behaviour_vs_fault_free_run(name, chaos, toy):
    """Removing the fault schedule must change the pinned behaviour —
    otherwise the scenario exercises nothing."""
    spec = chaos[name]
    healthy = replace(spec, name=f"{spec.name}-healthy", faults=())
    assert run_legacy(spec, toy).digest() != run_legacy(healthy, toy).digest()


# ----------------------------------------------------------------------
# gray failure: slow but alive, silently less confident
# ----------------------------------------------------------------------
def test_gray_failure_inflates_latency_and_escalations(chaos, toy):
    spec = chaos["gray-failure"]
    gray = run_legacy(spec, toy)
    healthy = run_legacy(replace(spec, name="gray-healthy", faults=()), toy)

    kinds = fault_kinds(gray)
    assert "gray" in kinds and "gray-restore" in kinds
    # Slow: the victim keeps serving, so tail latency inflates.
    assert gray.summary()["p95_latency_s"] > healthy.summary()["p95_latency_s"]
    # Alive: nothing crashes, nothing fails, nobody retries.
    assert gray.summary()["availability"] == healthy.summary()["availability"]
    assert gray.summary()["total_retries"] == 0
    # Silent quality loss: deflated confidences cross the escalation
    # threshold more often than healthy answers do.
    assert gray.summary()["escalation_rate"] > healthy.summary()["escalation_rate"]


def test_gray_failure_out_of_range_node_is_skipped(chaos, toy):
    spec = chaos["gray-failure"]
    oob = tuple(
        replace(f, node_index=99) if isinstance(f, GrayFailure) else f
        for f in spec.faults
    )
    report = run_legacy(replace(spec, name="gray-oob", faults=oob), toy)
    assert "skipped" in fault_kinds(report)
    assert "gray" not in fault_kinds(report)


# ----------------------------------------------------------------------
# cascade: a crash stresses the survivors
# ----------------------------------------------------------------------
def test_cascade_opens_window_and_propagates_failures(chaos, toy):
    spec = chaos["cascade"]
    cascaded = run_legacy(spec, toy)
    kinds = fault_kinds(cascaded)
    assert "crash" in kinds
    assert "cascade" in kinds  # the crash opened a cascade window

    # Against the same crash without the cascade policy, the cascade
    # must add failed completions — visible as extra retries.
    crash_only = tuple(f for f in spec.faults if not hasattr(f, "window_s"))
    baseline = run_legacy(
        replace(spec, name="cascade-crash-only", faults=crash_only), toy
    )
    assert "cascade" not in fault_kinds(baseline)
    assert (
        cascaded.summary()["total_retries"] > baseline.summary()["total_retries"]
    )


# ----------------------------------------------------------------------
# retry storm: correlated failures, budget-bounded amplification
# ----------------------------------------------------------------------
def test_retry_storm_budgets_bound_amplification(chaos, toy):
    spec = chaos["retry-storm"]
    bounded = run_legacy(spec, toy)
    assert "storm-window" in fault_kinds(bounded)
    assert bounded.n_retry_denied > 0  # the budgets actually bind
    denied = [r for r in bounded.records if r.retry_denied]
    assert denied
    budget = spec.retry.retry_budget
    for record in bounded.records:
        assert record.retries <= budget * len(record.versions_used) + budget

    unbounded = run_legacy(
        replace(
            spec,
            name="storm-unbounded",
            retry=replace(
                spec.retry,
                retry_budget=None,
                max_inflight_retries=None,
                max_total_retries=None,
            ),
        ),
        toy,
    )
    assert unbounded.n_retry_denied == 0
    # Removing the budgets lets the storm amplify load further.
    assert (
        unbounded.summary()["total_retries"] > bounded.summary()["total_retries"]
    )
    assert unbounded.retry_amplification > bounded.retry_amplification
    assert bounded.retry_amplification > 1.0


def test_retry_denial_is_digest_visible(chaos, toy):
    """A denied retry changes the pinned behaviour — the |retry-denied
    digest flag means budgets can never regress silently."""
    spec = chaos["retry-storm"]
    a = run_legacy(spec, toy)
    b = run_legacy(
        replace(
            spec,
            retry=replace(spec.retry, retry_budget=None, max_inflight_retries=None),
        ),
        toy,
    )
    assert a.digest() != b.digest()


def test_retry_storm_summary_reports_denials(chaos, toy):
    report = run_legacy(chaos["retry-storm"], toy)
    summary = report.summary()
    assert summary["n_retry_denied"] == report.n_retry_denied
    assert summary["retry_amplification"] == report.retry_amplification


# ----------------------------------------------------------------------
# cold-start wave: fresh capacity warms up before it helps
# ----------------------------------------------------------------------
def test_cold_start_wave_pairs_warmups(chaos, toy):
    spec = chaos["cold-start"]
    report = run_legacy(spec, toy)
    kinds = fault_kinds(report)
    assert kinds.count("cold-start") > 0  # the autoscaler added nodes
    assert kinds.count("warmed") <= kinds.count("cold-start")

    # The wave only slows nodes added mid-run, so against the same
    # scenario without it, tail latency during the spike is worse.
    healthy = run_legacy(replace(spec, name="cold-healthy", faults=()), toy)
    assert report.summary()["p95_latency_s"] >= healthy.summary()["p95_latency_s"]


def test_cold_start_without_scaleup_is_inert(chaos, toy):
    """A cold-start wave with no node churn logs nothing and leaves the
    digest untouched — the policy prices *new* capacity only."""
    spec = chaos["gray-failure"]  # fixed pools, no autoscaler
    with_wave = replace(
        spec,
        name="wave-inert",
        faults=(ColdStartWave(warmup_s=5.0, speed_factor=0.5),),
    )
    base = run_legacy(replace(spec, name="wave-base", faults=()), toy)
    waved = run_legacy(with_wave, toy)
    assert "cold-start" not in fault_kinds(waved)
    assert waved.digest() == base.digest()


# ----------------------------------------------------------------------
# thundering herd: held arrivals return as one surge
# ----------------------------------------------------------------------
def test_thundering_herd_holds_and_releases_arrivals(chaos, toy):
    spec = chaos["thundering-herd"]
    herd = next(f for f in spec.faults if isinstance(f, ThunderingHerd))
    report = run_legacy(spec, toy)
    assert "herd" in fault_kinds(report)

    arrivals = np.array([r.arrival_s for r in report.records])
    in_window = (arrivals >= herd.start_s) & (arrivals < herd.end_s)
    assert not in_window.any()  # the outage held everything
    released = (arrivals >= herd.end_s) & (arrivals < herd.end_s + herd.spread_s)
    assert released.sum() >= 3  # ...and released it as a surge

    # The surge must hurt: worse tail latency than the same load spread out.
    healthy = run_legacy(replace(spec, name="herd-healthy", faults=()), toy)
    assert report.summary()["p95_latency_s"] > healthy.summary()["p95_latency_s"]


def test_thundering_herd_arrival_transform_is_order_preserving():
    base = PoissonArrivals(5.0)
    modulator = ThunderingHerdArrivals(base, start_s=2.0, end_s=4.0, spread_s=0.1)
    rng = np.random.default_rng(7)
    raw = base.times(60, np.random.default_rng(7))
    out = modulator.times(60, rng)
    assert out.shape == raw.shape
    assert np.all(np.diff(out) >= 0.0)  # sorted
    assert not ((out >= 2.0) & (out < 4.0)).any()
    held = (raw >= 2.0) & (raw < 4.0)
    assert modulator.held_count(raw) == int(held.sum())
    # Held arrivals land inside the release burst, original order kept.
    released = out[(out >= 4.0) & (out < 4.1)]
    assert len(released) == int(held.sum())
    # Untouched arrivals pass through bit-exactly.
    np.testing.assert_array_equal(np.sort(raw[~held]), out[~np.isin(out, released)])


def test_thundering_herd_spread_zero_releases_at_end(toy):
    base = PoissonArrivals(5.0)
    modulator = ThunderingHerdArrivals(base, start_s=1.0, end_s=3.0, spread_s=0.0)
    out = modulator.times(40, np.random.default_rng(3))
    raw = base.times(40, np.random.default_rng(3))
    held = int(((raw >= 1.0) & (raw < 3.0)).sum())
    assert held > 0
    assert int((out == 3.0).sum()) == held


# ----------------------------------------------------------------------
# retry budgets without chaos: budgets are a first-class policy knob
# ----------------------------------------------------------------------
def test_zero_retry_budget_disables_retries_entirely(chaos, toy):
    spec = chaos["cascade"]
    no_retries = run_legacy(
        replace(
            spec,
            name="cascade-no-budget",
            retry=RetryPolicy(max_attempts=3, retry_budget=0),
        ),
        toy,
    )
    assert no_retries.summary()["total_retries"] == 0
    assert no_retries.n_retry_denied > 0
