"""Tests for fault injection, retries, and the scenario subsystem.

Covers the fault primitives on nodes/load balancer/cluster, the engine's
crash/straggler/transient semantics under exact trace-driven arrivals,
the retry and parking machinery, the new rate-varying arrival processes,
ScenarioSpec validation, and the determinism contract of the six
canonical scenarios.
"""

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import (
    ConcurrentPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.service.instances import get_instance_type
from repro.service.measurement import MeasurementSet
from repro.service.node import CallableVersion, ServiceNode, VersionResult
from repro.service.request import ServiceRequest
from repro.service.simulation import (
    Autoscaler,
    AutoscalerConfig,
    DiurnalArrivals,
    InvariantChecker,
    InvariantViolation,
    NodeCrash,
    NodeSlowdown,
    PoissonArrivals,
    RetryPolicy,
    ScenarioSpec,
    ServingSimulator,
    SpikeArrivals,
    TraceArrivals,
    TransientFaults,
    build_replay_cluster,
    canonical_scenarios,
    run_scenario,
    scenario_measurements,
)


@pytest.fixture(scope="module")
def toy():
    """The deterministic two-version scenario measurement table."""
    return scenario_measurements()


def _config(policy):
    return EnsembleConfiguration(config_id="cfg", policy=policy)


def _sim(measurements, policy, pools, **kwargs):
    cluster = build_replay_cluster(measurements, pools)
    kwargs.setdefault("check_invariants", True)
    kwargs.setdefault("seed", 0)
    return ServingSimulator(cluster, configuration=_config(policy), **kwargs)


# ----------------------------------------------------------------------
# fault dataclass validation
# ----------------------------------------------------------------------
class TestFaultValidation:
    def test_crash_requires_future_recovery(self):
        with pytest.raises(ValueError):
            NodeCrash(at_s=5.0, version="v", recover_at_s=5.0)
        with pytest.raises(ValueError):
            NodeCrash(at_s=-1.0, version="v")

    def test_slowdown_requires_positive_factor(self):
        with pytest.raises(ValueError):
            NodeSlowdown(at_s=0.0, version="v", speed_factor=0.0)
        with pytest.raises(ValueError):
            NodeSlowdown(at_s=1.0, version="v", until_s=1.0)

    def test_transient_window_bounds(self):
        with pytest.raises(ValueError):
            TransientFaults(start_s=2.0, end_s=2.0, failure_probability=0.5)
        with pytest.raises(ValueError):
            TransientFaults(start_s=0.0, end_s=1.0, failure_probability=1.5)
        window = TransientFaults(
            start_s=1.0, end_s=2.0, failure_probability=0.5, versions=("a",)
        )
        assert window.affects("a", 1.5)
        assert not window.affects("a", 2.0)  # end is exclusive
        assert not window.affects("b", 1.5)

    def test_retry_policy_backoff_schedule(self):
        retry = RetryPolicy(max_attempts=3, backoff_s=0.1, backoff_factor=2.0)
        assert retry.delay_before_retry(1) == pytest.approx(0.1)
        assert retry.delay_before_retry(2) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_engine_rejects_faults_on_unknown_versions(self, toy):
        cluster = build_replay_cluster(toy, {"fast": 1})
        with pytest.raises(ValueError, match="unknown version"):
            ServingSimulator(
                cluster,
                configuration=_config(SingleVersionPolicy("fast")),
                faults=(NodeCrash(at_s=1.0, version="nope"),),
            )


# ----------------------------------------------------------------------
# node / load-balancer / cluster fault primitives
# ----------------------------------------------------------------------
def _echo_node(compute_seconds=1.0, name="v"):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version=name,
            output=payload,
            error=0.0,
            confidence=0.9,
            compute_seconds=compute_seconds,
        )

    return ServiceNode(
        CallableVersion(name, handler), get_instance_type("cpu.medium")
    )


class TestFaultPrimitives:
    def test_kill_refunds_unworked_time(self):
        node = _echo_node(2.0)
        node.submit("r1", "x", now=0.0)
        node.execute_batch(node.pop_batch(1), now=0.0)
        assert node.busy_seconds == pytest.approx(2.0)
        node.kill(now=0.5, aborted_requests=1)
        assert not node.alive
        assert node.busy_seconds == pytest.approx(0.5)
        assert node.busy_until == pytest.approx(0.5)
        assert node.requests_served == 0
        with pytest.raises(RuntimeError, match="dead"):
            node.submit("r2", "y")

    def test_speed_scale_degrades_service_time(self):
        node = _echo_node(1.0)
        node.set_speed_scale(0.25)
        assert node.effective_speed_factor == pytest.approx(0.25)
        node.submit("r1", "x", now=0.0)
        completion = node.execute_batch(node.pop_batch(1), now=0.0)[0]
        assert completion.service_time_s == pytest.approx(4.0)
        with pytest.raises(ValueError):
            node.set_speed_scale(0.0)

    def test_evict_node_returns_queued_work_and_may_empty_pool(self, toy):
        cluster = build_replay_cluster(toy, {"fast": 1})
        balancer = cluster.load_balancer
        node = balancer.nodes_of("fast")[0]
        cluster.submit("fast", ServiceRequest("r1", toy.request_ids[0]))
        items = balancer.evict_node("fast", node)
        assert [item.request_id for item in items] == ["r1"]
        assert balancer.pool_size("fast") == 0
        with pytest.raises(ValueError):
            balancer.evict_node("fast", node)  # already gone

    def test_selection_skips_dead_nodes(self, toy):
        cluster = build_replay_cluster(toy, {"fast": 2})
        balancer = cluster.load_balancer
        first, second = balancer.nodes_of("fast")
        first.kill(now=0.0)
        assert balancer.live_pool_size("fast") == 1
        for _ in range(4):
            assert balancer.select_node("fast") is second

    def test_cluster_kill_node_keeps_busy_and_spend_on_books(self, toy):
        cluster = build_replay_cluster(toy, {"fast": 2})
        node = cluster.load_balancer.nodes_of("fast")[0]
        node.submit("r1", toy.request_ids[0], now=0.0)
        node.execute_batch(node.pop_batch(1), now=0.0)
        busy_before = node.busy_seconds
        cluster.kill_node("fast", node, now=1.0)
        assert cluster.load_balancer.pool_size("fast") == 1
        assert cluster.total_busy_seconds()["fast"] == pytest.approx(
            busy_before
        )
        assert cluster.iaas_spend()["fast"] == pytest.approx(
            busy_before * node.instance_type.price_per_second
        )


# ----------------------------------------------------------------------
# engine fault semantics (exact, trace-driven)
# ----------------------------------------------------------------------
class TestCrashSemantics:
    def test_running_attempt_retries_on_surviving_node(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 2},
            faults=(NodeCrash(at_s=0.02, version="fast", node_index=0),),
            retry=RetryPolicy(max_attempts=2),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        record = report.records[0]
        assert not record.failed
        assert record.retries == 1
        # the retry starts fresh at the crash time on the survivor
        assert record.finished_s == pytest.approx(0.02 + 0.05)
        assert report.availability == 1.0

    def test_no_retries_means_terminal_failure(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 2},
            faults=(NodeCrash(at_s=0.02, version="fast", node_index=0),),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        record = report.records[0]
        assert record.failed
        assert record.invocation_cost == 0.0
        assert record.node_seconds == {}
        assert report.availability == 0.0
        assert np.isnan(report.p95_latency_s)

    def test_queued_work_migrates_without_counting_a_retry(self, toy):
        # r1 runs on node 0; r2 queues behind it (JSQ sends r2 to node 1,
        # so use one node plus a second joining via... simpler: 1 node is
        # the crash victim and a recovery brings capacity back).
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 2},
            faults=(
                NodeCrash(at_s=0.02, version="fast", node_index=0),
                NodeCrash(at_s=0.02, version="fast", node_index=0),
            ),
            retry=RetryPolicy(max_attempts=2),
        )
        # Both nodes die at 0.02 (the second crash hits the new index 0);
        # nothing survives and there is no recovery: both requests fail.
        report = sim.run(
            TraceArrivals([0.0, 0.0]), 2, payload_ids=toy.request_ids
        )
        assert report.n_failed == 2
        assert report.availability == 0.0
        kinds = [entry.kind for entry in report.fault_log]
        assert kinds.count("crash") == 2

    def test_whole_pool_crash_parks_until_recovery(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 1},
            faults=(
                NodeCrash(
                    at_s=0.02, version="fast", node_index=0, recover_at_s=1.0
                ),
            ),
            retry=RetryPolicy(max_attempts=2),
        )
        report = sim.run(
            TraceArrivals([0.0, 0.01]), 2, payload_ids=toy.request_ids
        )
        assert report.n_failed == 0
        # both requests resolve only after the replacement node joins
        assert all(r.finished_s >= 1.0 for r in report.records)
        assert {e.kind for e in report.fault_log} == {"crash", "recover"}

    def test_whole_pool_crash_without_recovery_fails_unserved(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 1},
            faults=(NodeCrash(at_s=0.02, version="fast", node_index=0),),
            retry=RetryPolicy(max_attempts=3, backoff_s=0.01),
        )
        report = sim.run(
            TraceArrivals([0.0, 0.01]), 2, payload_ids=toy.request_ids
        )
        assert report.n_failed == 2
        assert report.goodput_rps == 0.0

    def test_autoscaler_replaces_dead_pool(self, toy):
        cluster = build_replay_cluster(toy, {"fast": 1})
        scaler = Autoscaler(
            AutoscalerConfig(
                min_nodes=1,
                max_nodes=2,
                evaluation_interval_s=0.25,
                cooldown_s=0.0,
            )
        )
        sim = ServingSimulator(
            cluster,
            configuration=_config(SingleVersionPolicy("fast")),
            autoscaler=scaler,
            faults=(NodeCrash(at_s=0.02, version="fast", node_index=0),),
            retry=RetryPolicy(max_attempts=2),
            check_invariants=True,
            seed=0,
        )
        report = sim.run(
            TraceArrivals([0.0, 0.01]), 2, payload_ids=toy.request_ids
        )
        assert report.n_failed == 0
        assert any(
            e.reason == "dead-pool" for e in report.scaling_events
        ), "the dead pool must be replaced by the autoscaler"

    def test_dead_pool_replacement_ignores_cooldown(self):
        """A pool at zero nodes with queued work is down, not flapping:
        the replacement decision must not wait out the cooldown."""
        scaler = Autoscaler(AutoscalerConfig(cooldown_s=10.0))
        scaler.record("v", old_size=2, new_size=1, now=0.0, reason="idle")
        assert (
            scaler.decide(
                "v", n_nodes=0, queue_depth=3, utilization=0.0, now=1.0
            )
            == 1
        )
        # an empty dead pool with no waiting work stays down
        assert (
            scaler.decide(
                "v", n_nodes=0, queue_depth=0, utilization=0.0, now=1.0
            )
            == 0
        )

    def test_crash_resets_utilization_baseline_to_survivors(self, toy):
        """A mid-batch crash must not leave phantom busy-seconds in the
        autoscaler's utilization baseline: the victim's pre-charged batch
        wall was counted at an earlier tick but partially refunded by the
        kill, so the baseline is reset to the survivors' current sum."""
        cluster = build_replay_cluster(toy, {"slow": 2})
        scaler = Autoscaler(
            AutoscalerConfig(evaluation_interval_s=0.25, cooldown_s=0.0)
        )
        sim = ServingSimulator(
            cluster,
            configuration=_config(SingleVersionPolicy("slow")),
            autoscaler=scaler,
            # tick at t=0.25 counts the running batch's full 0.4s wall;
            # the crash at t=0.3 refunds the unelapsed 0.1s
            faults=(NodeCrash(at_s=0.3, version="slow", node_index=0),),
            retry=RetryPolicy(max_attempts=2),
            check_invariants=True,
            seed=0,
        )
        report = sim.run(
            TraceArrivals([0.0, 0.05]), 2, payload_ids=toy.request_ids
        )
        assert report.n_failed == 0
        # the baseline equals the final pool's true busy sum — no phantom
        # seconds survive the crash bookkeeping
        survivors = cluster.load_balancer.nodes_of("slow")
        assert sim._last_busy["slow"] <= sum(
            node.busy_seconds for node in survivors
        ) + 1e-9

    def test_out_of_range_crash_index_is_logged_noop(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 1},
            faults=(NodeCrash(at_s=0.5, version="fast", node_index=5),),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        assert report.n_failed == 0
        assert [e.kind for e in report.fault_log] == ["skipped"]


class TestStragglerSemantics:
    def test_slowdown_stretches_service_time_then_restores(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 1},
            faults=(
                NodeSlowdown(
                    at_s=0.0,
                    version="fast",
                    node_index=0,
                    speed_factor=0.5,
                    until_s=1.0,
                ),
            ),
        )
        report = sim.run(
            TraceArrivals([0.0, 2.0]), 2, payload_ids=toy.request_ids
        )
        by_arrival = sorted(report.records, key=lambda r: r.arrival_s)
        assert by_arrival[0].response_time_s == pytest.approx(0.10)
        assert by_arrival[1].response_time_s == pytest.approx(0.05)
        assert [e.kind for e in report.fault_log] == ["slowdown", "restore"]

    def test_slowdown_also_inflates_billed_seconds(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 1},
            faults=(
                NodeSlowdown(
                    at_s=0.0, version="fast", node_index=0, speed_factor=0.5
                ),
            ),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        assert report.records[0].node_seconds["fast"] == pytest.approx(0.10)


class TestTransientSemantics:
    def test_certain_failure_exhausts_attempts(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 1},
            faults=(
                TransientFaults(
                    start_s=0.0, end_s=10.0, failure_probability=1.0
                ),
            ),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.1),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        record = report.records[0]
        assert record.failed
        assert record.retries == 1
        assert report.total_retries == 1

    def test_retry_succeeds_outside_window(self, toy):
        sim = _sim(
            toy,
            SingleVersionPolicy("fast"),
            {"fast": 1},
            faults=(
                TransientFaults(
                    start_s=0.0, end_s=0.1, failure_probability=1.0
                ),
            ),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.1),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        record = report.records[0]
        assert not record.failed
        assert record.retries == 1
        # attempt 1 eaten at 0.05; retry enqueued at 0.15, done at 0.20
        assert record.finished_s == pytest.approx(0.20)

    def test_accurate_leg_loss_is_harmless_with_confident_fast(self, toy):
        # Payload r-conf has fast confidence above the 0.5 threshold, so
        # the conc ensemble accepts the fast result; the accurate job is
        # eaten by the fault window and its loss must not fail the request.
        confident = int(
            np.argmax(toy.column("fast", "confidence") > 0.8)
        )
        payload = toy.request_ids[confident]
        sim = _sim(
            toy,
            ConcurrentPolicy("fast", "slow", 0.5),
            {"fast": 1, "slow": 1},
            faults=(
                TransientFaults(
                    start_s=0.0,
                    end_s=10.0,
                    failure_probability=1.0,
                    versions=("slow",),
                ),
            ),
        )
        report = sim.run(TraceArrivals([0.0]), 1, payload_ids=[payload])
        record = report.records[0]
        assert not record.failed
        assert record.versions_used == ("fast",)
        assert record.finished_s == pytest.approx(0.05)

    def test_fast_leg_loss_falls_back_to_concurrent_accurate(self, toy):
        """conc/et survive a dead fast leg: the accurate job answers."""
        sim = _sim(
            toy,
            ConcurrentPolicy("fast", "slow", 0.5),
            {"fast": 1, "slow": 1},
            faults=(
                TransientFaults(
                    start_s=0.0,
                    end_s=10.0,
                    failure_probability=1.0,
                    versions=("fast",),
                ),
            ),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        record = report.records[0]
        assert not record.failed
        assert record.versions_used == ("slow",)
        assert record.finished_s == pytest.approx(0.4)
        assert record.node_seconds == {"slow": pytest.approx(0.4)}

    def test_confident_fast_answer_survives_unrecovered_accurate_pool(
        self, toy
    ):
        """A parked-forever accurate leg must not fail a request whose
        confident fast answer is already in hand (drain-time rescue)."""
        confident = int(np.argmax(toy.column("fast", "confidence") > 0.8))
        payload = toy.request_ids[confident]
        sim = _sim(
            toy,
            ConcurrentPolicy("fast", "slow", 0.5),
            {"fast": 1, "slow": 1},
            # the whole slow pool dies before the accurate job runs and
            # never recovers: the job parks until the loop drains
            faults=(NodeCrash(at_s=0.01, version="slow", node_index=0),),
            retry=RetryPolicy(max_attempts=2),
        )
        report = sim.run(TraceArrivals([0.0]), 1, payload_ids=[payload])
        record = report.records[0]
        assert not record.failed
        assert record.versions_used == ("fast",)
        assert record.finished_s == pytest.approx(0.05)
        assert report.availability == 1.0

    def test_leg_in_retry_backoff_is_not_treated_as_dead(self, toy):
        """A sibling leg waiting out its backoff can still answer: the
        request must not be failed while its retry is pending."""
        sim = _sim(
            toy,
            ConcurrentPolicy("fast", "slow", 0.5),
            {"fast": 1, "slow": 2},
            faults=(
                # every fast completion before t=0.35 is eaten...
                TransientFaults(
                    start_s=0.0,
                    end_s=0.35,
                    failure_probability=1.0,
                    versions=("fast",),
                ),
                # ...and the slow node running the accurate job dies
                # mid-batch, pushing that leg into retry backoff
                NodeCrash(at_s=0.1, version="slow", node_index=0),
            ),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.2),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        record = report.records[0]
        # fast exhausts at t=0.3 while the slow retry (scheduled for
        # t=0.3) is still viable; the accurate answer lands at ~0.7
        assert not record.failed
        assert record.versions_used == ("slow",)
        assert record.finished_s == pytest.approx(0.7)
        # both retries actually fired: one fast re-drive, one slow
        assert record.retries == 2

    def test_accurate_leg_death_waits_for_inflight_fast_confidence(self, toy):
        """The accurate leg dying while the fast job is still running must
        not fail the request before the fast confidence gate decides."""
        confident = int(np.argmax(toy.column("fast", "confidence") > 0.8))
        payload = toy.request_ids[confident]
        sim = _sim(
            toy,
            ConcurrentPolicy("fast", "slow", 0.5),
            {"fast": 1, "slow": 1},
            # the accurate job (running since t=0) dies at t=0.02, before
            # the fast job finishes at t=0.05; no retries
            faults=(NodeCrash(at_s=0.02, version="slow", node_index=0),),
        )
        report = sim.run(TraceArrivals([0.0]), 1, payload_ids=[payload])
        record = report.records[0]
        assert not record.failed
        assert record.versions_used == ("fast",)
        assert record.finished_s == pytest.approx(0.05)

    def test_et_cancels_parked_accurate_job_at_no_cost(self):
        """et semantics: a never-started accurate job is cancelled free,
        even when it is parked behind a dead pool."""
        from repro.core.policies import EarlyTerminationPolicy
        from repro.service.simulation import ServingSimulator

        ids = ("hi", "lo")
        ms = MeasurementSet(
            service="t",
            request_ids=ids,
            versions=("fast", "slow"),
            error=np.zeros((2, 2)),
            latency_s=np.array([[0.05, 0.4], [0.05, 0.4]]),
            confidence=np.array([[0.9, 0.95], [0.1, 0.95]]),
            version_instances={"fast": "cpu.medium", "slow": "cpu.medium"},
        )
        sim = ServingSimulator(
            build_replay_cluster(ms, {"fast": 1, "slow": 1}),
            configuration=_config(EarlyTerminationPolicy("fast", "slow", 0.5)),
            faults=(NodeCrash(at_s=0.02, version="slow", node_index=0),),
            retry=RetryPolicy(max_attempts=1),
            check_invariants=True,
            seed=0,
        )
        # r0 occupies the slow node (its accurate job is running at the
        # crash); r1's accurate job queues behind it, migrates at the
        # crash, and parks (no surviving slow node).
        sim.submit(ServiceRequest("r0", "lo"), at_time=0.0)
        sim.submit(ServiceRequest("r1", "hi"), at_time=0.01)
        report = sim.drain()
        by_id = {r.request_id: r for r in report.records}
        # r1's confident fast result cancels the parked accurate job
        # outright: billed fast-only, answered at the fast finish
        assert not by_id["r1"].failed
        assert by_id["r1"].versions_used == ("fast",)
        assert by_id["r1"].node_seconds == {"fast": pytest.approx(0.05)}

    def test_et_cancels_pending_retry_and_does_not_count_it(self, toy):
        """A retry still in backoff when the confident fast result lands
        is cancelled, and never counted as a retry."""
        confident = int(np.argmax(toy.column("fast", "confidence") > 0.8))
        payload = toy.request_ids[confident]
        from repro.core.policies import EarlyTerminationPolicy

        sim = _sim(
            toy,
            EarlyTerminationPolicy("fast", "slow", 0.5),
            {"fast": 1, "slow": 2},
            # the accurate job dies at 0.02; its retry backs off until
            # t=1.02, far beyond the fast finish at 0.05
            faults=(NodeCrash(at_s=0.02, version="slow", node_index=0),),
            retry=RetryPolicy(max_attempts=2, backoff_s=1.0),
        )
        report = sim.run(TraceArrivals([0.0]), 1, payload_ids=[payload])
        record = report.records[0]
        assert not record.failed
        assert record.versions_used == ("fast",)
        assert record.finished_s == pytest.approx(0.05)
        assert record.retries == 0
        assert report.total_retries == 0

    def test_fast_leg_loss_fails_the_request(self, toy):
        sim = _sim(
            toy,
            SequentialPolicy("fast", "slow", 0.6),
            {"fast": 1, "slow": 1},
            faults=(
                TransientFaults(
                    start_s=0.0,
                    end_s=10.0,
                    failure_probability=1.0,
                    versions=("fast",),
                ),
            ),
        )
        report = sim.run(
            TraceArrivals([0.0]), 1, payload_ids=toy.request_ids
        )
        assert report.records[0].failed


# ----------------------------------------------------------------------
# rate-varying arrival processes
# ----------------------------------------------------------------------
class TestRateVaryingArrivals:
    def test_diurnal_mean_rate_and_order(self):
        process = DiurnalArrivals(10.0, amplitude=0.5, period_s=10.0)
        rng = np.random.default_rng(5)
        times = process.times(5000, rng)
        assert np.all(np.diff(times) >= 0.0)
        # over many full periods the mean rate converges on base_rate
        observed = len(times) / times[-1]
        assert observed == pytest.approx(10.0, rel=0.1)
        assert process.rate_at(2.5) == pytest.approx(15.0)
        assert process.rate_at(7.5) == pytest.approx(5.0)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, period_s=0.0)

    def test_spike_concentrates_arrivals_in_window(self):
        process = SpikeArrivals(
            2.0, spike_start_s=10.0, spike_duration_s=5.0, spike_multiplier=10.0
        )
        rng = np.random.default_rng(6)
        times = process.times(2000, rng)
        assert np.all(np.diff(times) >= 0.0)
        in_window = np.sum((times >= 10.0) & (times < 15.0))
        before = np.sum(times < 10.0)
        # 5 s at 20/s ~ 100 arrivals vs 10 s at 2/s ~ 20 before the spike
        assert in_window > 3 * before
        assert process.rate_at(12.0) == pytest.approx(20.0)
        assert process.rate_at(16.0) == pytest.approx(2.0)

    def test_spike_validation(self):
        with pytest.raises(ValueError):
            SpikeArrivals(2.0, spike_start_s=0.0, spike_duration_s=1.0,
                          spike_multiplier=1.0)
        with pytest.raises(ValueError):
            SpikeArrivals(2.0, spike_start_s=-1.0, spike_duration_s=1.0)


# ----------------------------------------------------------------------
# scenario specs
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def test_validation(self):
        config = _config(SingleVersionPolicy("fast"))
        with pytest.raises(ValueError, match="exactly one"):
            ScenarioSpec(
                name="s",
                arrivals=PoissonArrivals(1.0),
                n_requests=10,
                pools={"fast": 1},
            )
        with pytest.raises(ValueError, match="n_requests"):
            ScenarioSpec(
                name="s",
                arrivals=PoissonArrivals(1.0),
                n_requests=0,
                pools={"fast": 1},
                configuration=config,
            )
        with pytest.raises(ValueError, match="at least one node"):
            ScenarioSpec(
                name="s",
                arrivals=PoissonArrivals(1.0),
                n_requests=1,
                pools={"fast": 0},
                configuration=config,
            )

    def test_canonical_scenarios_cover_the_fault_vocabulary(self):
        specs = canonical_scenarios()
        assert len(specs) == 6
        fault_types = {
            type(fault) for spec in specs.values() for fault in spec.faults
        }
        assert fault_types == {NodeCrash, NodeSlowdown, TransientFaults}

    def test_all_canonical_scenarios_run_deterministically(self, toy):
        for name, spec in canonical_scenarios().items():
            first = run_scenario(spec, toy, check_invariants=True)
            second = run_scenario(spec, toy, check_invariants=True)
            assert first.digest() == second.digest(), (
                f"scenario {name!r} is not deterministic"
            )
            assert first.n_requests == spec.n_requests

    def test_fault_free_spec_matches_plain_engine_run(self, toy):
        spec = canonical_scenarios()["baseline"]
        assert spec.faults == ()
        via_scenario = run_scenario(spec, toy, check_invariants=True)
        cluster = build_replay_cluster(toy, dict(spec.pools))
        plain = ServingSimulator(
            cluster, configuration=spec.configuration, seed=spec.seed
        )
        direct = plain.run(
            spec.arrivals, spec.n_requests, payload_ids=toy.request_ids
        )
        assert via_scenario.digest() == direct.digest()

    def test_checker_does_not_change_behaviour(self, toy):
        spec = canonical_scenarios()["flaky"]
        checked = run_scenario(spec, toy, check_invariants=True)
        unchecked = run_scenario(spec, toy, check_invariants=False)
        assert checked.digest() == unchecked.digest()


# ----------------------------------------------------------------------
# the invariant checker itself
# ----------------------------------------------------------------------
class TestInvariantChecker:
    def test_clock_must_not_rewind(self):
        checker = InvariantChecker()
        checker.tick(2.0)
        with pytest.raises(InvariantViolation, match="backwards"):
            checker.tick(1.0)

    def test_duplicate_arrival_rejected(self):
        checker = InvariantChecker()
        checker.on_arrival("r1", 0.0)
        with pytest.raises(InvariantViolation, match="twice"):
            checker.on_arrival("r1", 0.1)

    def test_attempt_numbers_must_be_contiguous(self):
        checker = InvariantChecker()
        checker.on_arrival("r1", 0.0)
        with pytest.raises(InvariantViolation, match="contiguous"):
            checker.on_attempt_started("r1", "v", 2, 0.1)

    def test_retry_must_follow_a_failure(self):
        checker = InvariantChecker()
        checker.on_arrival("r1", 0.0)
        checker.on_attempt_started("r1", "v", 1, 0.0)
        checker.on_attempt_finished("r1", "v", 1, 0.1, "ok")
        with pytest.raises(InvariantViolation, match="not a failure"):
            checker.on_attempt_started("r1", "v", 2, 0.2)

    def test_finalize_requires_arrival(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="never arrived"):
            checker.on_finalized("ghost", 0.0, failed=False)

    def test_orphan_without_detach_rejected(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="never detached"):
            checker.on_orphan_finished("r1", "v", 0.0)
