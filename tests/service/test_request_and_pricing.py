"""Tests for service requests, instance catalogue and pricing."""

import pytest

from repro.service.instances import INSTANCE_CATALOG, InstanceType, get_instance_type
from repro.service.pricing import CostBreakdown, PricingModel
from repro.service.request import Objective, ServiceRequest, ServiceResponse


class TestObjective:
    def test_parse_response_time(self):
        assert Objective.from_header("response-time") is Objective.RESPONSE_TIME

    def test_parse_cost_case_insensitive(self):
        assert Objective.from_header("  COST ") is Objective.COST

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            Objective.from_header("latency")


class TestServiceRequest:
    def test_defaults(self):
        request = ServiceRequest(request_id="r1", payload="data")
        assert request.tolerance == 0.0
        assert request.objective is Objective.RESPONSE_TIME

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            ServiceRequest(request_id="r1", payload=None, tolerance=-0.1)

    def test_from_headers_parses_annotation(self):
        request = ServiceRequest.from_headers(
            "r2",
            "payload",
            {"Tolerance": "0.01", "Objective": "cost", "X-Consumer": "app-7"},
        )
        assert request.tolerance == pytest.approx(0.01)
        assert request.objective is Objective.COST
        assert request.metadata["X-Consumer"] == "app-7"

    def test_from_headers_defaults_when_missing(self):
        request = ServiceRequest.from_headers("r3", None, {})
        assert request.tolerance == 0.0
        assert request.objective is Objective.RESPONSE_TIME

    @pytest.mark.parametrize("tolerance", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite_tolerance(self, tolerance):
        with pytest.raises(ValueError, match="finite"):
            ServiceRequest(request_id="r1", payload=None, tolerance=tolerance)

    @pytest.mark.parametrize(
        "key", ["Tolerance", "tolerance", "TOLERANCE", "  ToLeRaNcE  "]
    )
    def test_from_headers_key_case_and_whitespace(self, key):
        request = ServiceRequest.from_headers("r4", None, {key: "0.05"})
        assert request.tolerance == pytest.approx(0.05)
        # The recognised header is consumed, never echoed into metadata.
        assert request.metadata == {}

    def test_from_headers_value_whitespace(self):
        request = ServiceRequest.from_headers(
            "r4", None, {"Tolerance": "  0.05  ", "Objective": "  Cost "}
        )
        assert request.tolerance == pytest.approx(0.05)
        assert request.objective is Objective.COST

    def test_from_headers_malformed_tolerance_names_the_header(self):
        with pytest.raises(ValueError, match="Tolerance header"):
            ServiceRequest.from_headers("r5", None, {"Tolerance": "abc"})
        with pytest.raises(ValueError, match="Tolerance header"):
            ServiceRequest.from_headers("r5", None, {"Tolerance": ""})
        with pytest.raises(ValueError, match="Tolerance header"):
            ServiceRequest.from_headers("r5", None, {"Tolerance": None})

    @pytest.mark.parametrize("value", ["nan", "inf", "-inf", "-0.5"])
    def test_from_headers_rejects_unroutable_tolerances(self, value):
        # Parses as a float, but fails request validation.
        with pytest.raises(ValueError):
            ServiceRequest.from_headers("r6", None, {"Tolerance": value})

    @pytest.mark.parametrize(
        "headers",
        [
            {"Tolerance": "0.01", " tolerance ": "0.05"},
            {"Objective": "cost", "OBJECTIVE": "response-time"},
        ],
    )
    def test_from_headers_rejects_duplicate_annotation_headers(self, headers):
        with pytest.raises(ValueError, match="duplicate"):
            ServiceRequest.from_headers("r7", None, headers)

    def test_from_headers_metadata_passthrough_preserves_casing(self):
        headers = {
            "Tolerance": "0.01",
            "X-Consumer": "app-7",
            "x-trace-id": "abc123",
            "Deadline-Propagation": "off",
        }
        request = ServiceRequest.from_headers("r8", None, headers)
        assert request.metadata == {
            "X-Consumer": "app-7",
            "x-trace-id": "abc123",
            "Deadline-Propagation": "off",
        }


class TestInstanceCatalog:
    def test_known_types(self):
        assert "cpu.medium" in INSTANCE_CATALOG
        assert get_instance_type("gpu.k80").is_gpu

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            get_instance_type("tpu.v4")

    def test_price_per_second(self):
        inst = get_instance_type("cpu.medium")
        assert inst.price_per_second == pytest.approx(inst.hourly_price / 3600)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType(name="bad", hourly_price=0.0, speed_factor=1.0)
        with pytest.raises(ValueError):
            InstanceType(name="bad", hourly_price=1.0, speed_factor=0.0)


class TestPricingModel:
    @pytest.fixture()
    def pricing(self):
        return PricingModel(
            {
                "fast": get_instance_type("cpu.medium"),
                "slow": get_instance_type("cpu.large"),
            },
            per_request_fee=0.001,
            markup=2.0,
        )

    def test_compute_cost(self, pricing):
        expected = 10.0 * get_instance_type("cpu.medium").price_per_second
        assert pricing.compute_cost("fast", 10.0) == pytest.approx(expected)

    def test_compute_cost_rejects_negative(self, pricing):
        with pytest.raises(ValueError):
            pricing.compute_cost("fast", -1.0)

    def test_unknown_version(self, pricing):
        with pytest.raises(KeyError):
            pricing.compute_cost("huge", 1.0)

    def test_request_cost_includes_fee_and_markup(self, pricing):
        breakdown = pricing.request_cost({"fast": 2.0})
        iaas = 2.0 * get_instance_type("cpu.medium").price_per_second
        assert breakdown.iaas_cost == pytest.approx(iaas)
        assert breakdown.invocation_cost == pytest.approx(0.001 + 2.0 * iaas)
        assert breakdown.n_requests == 1

    def test_batch_cost_aggregates(self, pricing):
        batch = pricing.batch_cost({"r1": {"fast": 1.0}, "r2": {"slow": 1.0}})
        assert batch.n_requests == 2
        assert set(batch.per_version_iaas) == {"fast", "slow"}
        assert batch.mean_invocation_cost > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PricingModel({}, per_request_fee=0.0)
        with pytest.raises(ValueError):
            PricingModel({"v": get_instance_type("cpu.medium")}, markup=0.0)

    def test_cost_breakdown_add(self):
        a = CostBreakdown(1.0, 0.5, {"v": 0.5}, 1)
        b = CostBreakdown(2.0, 1.0, {"v": 0.5, "w": 0.5}, 2)
        merged = a.add(b)
        assert merged.invocation_cost == pytest.approx(3.0)
        assert merged.per_version_iaas["v"] == pytest.approx(1.0)
        assert merged.n_requests == 3

    def test_empty_breakdown_mean(self):
        assert CostBreakdown().mean_invocation_cost == 0.0


class TestServiceResponse:
    def test_fields(self):
        response = ServiceResponse(
            request_id="r1",
            result="hello",
            versions_used=("v1",),
            response_time_s=0.1,
            invocation_cost=0.002,
            tier=0.01,
            confidence=0.9,
        )
        assert response.result == "hello"
        assert response.tier == 0.01
