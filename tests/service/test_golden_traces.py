"""Golden-trace regression tests for the serving simulator.

Three canonical scenarios — the healthy ``baseline``, the ``node-crash``
degraded mode and the ``flaky`` retry storm — are pinned to SHA-256
digests of their full simulated behaviour (arrival times, routing
decisions, completion order, retries, total cost) checked into
``tests/service/golden/``.  The engine's determinism contract says the
same seed and spec must reproduce those digests exactly; any diff means
simulated *behaviour* changed, deliberately or not.

To regenerate after an intentional engine change::

    PYTHONPATH=src python -m pytest tests/service/test_golden_traces.py \
        --update-golden

and see ``tests/service/golden/README.md`` for when that is legitimate.
"""

import json
from pathlib import Path

import pytest

from repro.service.simulation import (
    canonical_scenarios,
    chaos_scenarios,
    run_scenario,
    scenario_measurements,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The pinned scenarios: one healthy control, one crash, one retry storm.
GOLDEN_SCENARIOS = ("baseline", "node-crash", "flaky")

#: The pinned chaos vocabulary: one golden per first-class fault type.
CHAOS_GOLDEN_SCENARIOS = (
    "gray-failure",
    "cascade",
    "retry-storm",
    "cold-start",
    "thundering-herd",
)


def _scenario(name):
    scenarios = canonical_scenarios()
    if name in scenarios:
        return scenarios[name]
    return chaos_scenarios()[name]


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()


def _golden_payload(name, report):
    """What a golden file records: the digest plus readable context.

    Only ``digest`` is asserted on; the headline numbers exist so a human
    reading a golden diff can see roughly *what* changed.
    """
    summary = report.summary()
    return {
        "scenario": name,
        "digest": report.digest(),
        "headline": {
            "n_requests": summary["n_requests"],
            "availability": round(summary["availability"], 6),
            "total_retries": summary["total_retries"],
            "p95_latency_s": round(summary["p95_latency_s"], 9),
            "mean_invocation_cost": round(
                summary["mean_invocation_cost"], 12
            ),
            "escalation_rate": round(summary["escalation_rate"], 6),
            "n_fault_events": summary["n_fault_events"],
            "n_retry_denied": summary["n_retry_denied"],
        },
    }


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS + CHAOS_GOLDEN_SCENARIOS)
def test_golden_trace(name, toy, update_golden):
    spec = _scenario(name)
    report = run_scenario(spec, toy, check_invariants=True)
    payload = _golden_payload(name, report)
    path = GOLDEN_DIR / f"{name}.json"

    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return

    assert path.exists(), (
        f"golden file {path} is missing; generate it with "
        "`pytest tests/service/test_golden_traces.py --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert payload["digest"] == golden["digest"], (
        f"scenario {name!r} no longer reproduces its golden trace.\n"
        f"  golden : {golden['headline']}\n"
        f"  current: {payload['headline']}\n"
        "If this behaviour change is intentional, regenerate with "
        "--update-golden and explain the change in the commit message; "
        "see tests/service/golden/README.md."
    )


def test_golden_traces_are_seed_sensitive(toy):
    """Sanity: the digest actually discriminates different behaviour."""
    from dataclasses import replace

    spec = canonical_scenarios()["baseline"]
    base = run_scenario(spec, toy)
    reseeded = run_scenario(replace(spec, seed=spec.seed + 1), toy)
    assert base.digest() != reseeded.digest()
