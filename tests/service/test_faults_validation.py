"""Construction-time validation of the fault vocabulary.

Every fault event — the original trio and the chaos vocabulary — rejects
malformed windows, timestamps and rates at construction with a clear
``ValueError``, so a typo in a scenario spec fails fast instead of
silently simulating something else.  ``RetryPolicy`` budget fields get
the same treatment.
"""

import math

import pytest

from repro.service.simulation import (
    CascadePolicy,
    ColdStartWave,
    GrayFailure,
    NodeCrash,
    NodeSlowdown,
    RetryPolicy,
    RetryStorm,
    ThunderingHerd,
    TransientFaults,
    affected_versions,
)


# ----------------------------------------------------------------------
# valid constructions (the happy path must not over-reject)
# ----------------------------------------------------------------------
VALID = [
    NodeCrash(at_s=1.0, version="fast"),
    NodeCrash(at_s=0.0, version="fast", node_index=2, recover_at_s=5.0),
    NodeSlowdown(at_s=1.0, version="slow", speed_factor=0.25, until_s=3.0),
    NodeSlowdown(at_s=0.0, version="slow", speed_factor=2.0),
    TransientFaults(start_s=1.0, end_s=2.0, failure_probability=0.5),
    TransientFaults(
        start_s=0.0, end_s=1.0, failure_probability=1.0, versions=("fast",)
    ),
    GrayFailure(at_s=1.0, version="fast"),
    GrayFailure(
        at_s=0.0,
        version="fast",
        speed_factor=1.0,
        confidence_factor=0.0,
        until_s=9.0,
    ),
    CascadePolicy(),
    CascadePolicy(version="slow", window_s=0.5, base_probability=0.0),
    RetryStorm(start_s=1.0, end_s=4.0),
    RetryStorm(start_s=0.0, end_s=2.0, bad_fraction=1.0, versions=("fast",)),
    ColdStartWave(warmup_s=2.0),
    ColdStartWave(warmup_s=0.5, speed_factor=1.0, confidence_factor=0.0),
    ThunderingHerd(start_s=1.0, end_s=2.0),
    ThunderingHerd(start_s=0.0, end_s=1.0, spread_s=0.0),
]


@pytest.mark.parametrize(
    "fault", VALID, ids=[type(f).__name__ + f"-{i}" for i, f in enumerate(VALID)]
)
def test_valid_constructions_accepted(fault):
    assert affected_versions(fault) is not None  # well-formed for the engine


# ----------------------------------------------------------------------
# invalid constructions (one representative per rule, every class)
# ----------------------------------------------------------------------
INVALID = [
    # negative timestamps
    (lambda: NodeCrash(at_s=-1.0, version="fast"), "non-negative"),
    (lambda: NodeSlowdown(at_s=-0.1, version="fast"), "non-negative"),
    (lambda: GrayFailure(at_s=-2.0, version="fast"), "non-negative"),
    (
        lambda: TransientFaults(start_s=-1.0, end_s=2.0, failure_probability=0.5),
        "non-negative",
    ),
    (lambda: RetryStorm(start_s=-1.0, end_s=2.0), "non-negative"),
    (lambda: ThunderingHerd(start_s=-1.0, end_s=2.0), "non-negative"),
    # inverted / empty windows
    (lambda: NodeCrash(at_s=5.0, version="fast", recover_at_s=5.0), "after"),
    (lambda: NodeSlowdown(at_s=5.0, version="fast", until_s=4.0), "after"),
    (lambda: GrayFailure(at_s=5.0, version="fast", until_s=5.0), "after"),
    (
        lambda: TransientFaults(start_s=2.0, end_s=2.0, failure_probability=0.5),
        "after",
    ),
    (lambda: RetryStorm(start_s=3.0, end_s=1.0), "after"),
    (lambda: ThunderingHerd(start_s=2.0, end_s=2.0), "after"),
    # rates outside [0, 1]
    (
        lambda: TransientFaults(start_s=1.0, end_s=2.0, failure_probability=1.5),
        r"\[0, 1\]",
    ),
    (
        lambda: RetryStorm(start_s=1.0, end_s=2.0, failure_probability=-0.1),
        r"\[0, 1\]",
    ),
    (lambda: RetryStorm(start_s=1.0, end_s=2.0, bad_fraction=1.5), r"\[0, 1\]"),
    (lambda: GrayFailure(at_s=1.0, version="fast", confidence_factor=1.5), r"\[0, 1\]"),
    (lambda: CascadePolicy(base_probability=-0.2), r"\[0, 1\]"),
    (lambda: CascadePolicy(max_probability=1.1), r"\[0, 1\]"),
    (lambda: ColdStartWave(warmup_s=1.0, confidence_factor=-0.5), r"\[0, 1\]"),
    # speed factors
    (lambda: NodeSlowdown(at_s=1.0, version="fast", speed_factor=0.0), "positive"),
    (lambda: GrayFailure(at_s=1.0, version="fast", speed_factor=0.0), r"\(0, 1\]"),
    (lambda: GrayFailure(at_s=1.0, version="fast", speed_factor=1.5), r"\(0, 1\]"),
    (lambda: ColdStartWave(warmup_s=1.0, speed_factor=0.0), r"\(0, 1\]"),
    # structural fields
    (lambda: NodeCrash(at_s=1.0, version="fast", node_index=-1), "node_index"),
    (lambda: GrayFailure(at_s=1.0, version="fast", node_index=-1), "node_index"),
    (lambda: CascadePolicy(window_s=0.0), "positive"),
    (lambda: CascadePolicy(load_factor=-0.1), "non-negative"),
    (
        lambda: CascadePolicy(base_probability=0.8, max_probability=0.5),
        "must not exceed",
    ),
    (lambda: RetryStorm(start_s=1.0, end_s=2.0, bucket_s=0.0), "positive"),
    (lambda: ColdStartWave(warmup_s=0.0), "positive"),
    (lambda: ThunderingHerd(start_s=1.0, end_s=2.0, spread_s=-0.01), "non-negative"),
    # non-finite values
    (lambda: NodeCrash(at_s=math.nan, version="fast"), "finite"),
    (lambda: GrayFailure(at_s=1.0, version="fast", until_s=math.inf), "finite"),
    (
        lambda: RetryStorm(start_s=1.0, end_s=math.nan),
        "finite",
    ),
    (lambda: ColdStartWave(warmup_s=math.inf), "finite"),
]


@pytest.mark.parametrize(
    "build,match",
    INVALID,
    ids=[f"invalid-{i}" for i in range(len(INVALID))],
)
def test_invalid_constructions_rejected(build, match):
    with pytest.raises(ValueError, match=match):
        build()


# ----------------------------------------------------------------------
# RetryPolicy budgets
# ----------------------------------------------------------------------
def test_retry_policy_budgets_default_unbounded():
    policy = RetryPolicy(max_attempts=3)
    assert policy.retry_budget is None
    assert policy.max_inflight_retries is None
    assert policy.max_total_retries is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"retry_budget": 0},
        {"retry_budget": 5},
        {"max_inflight_retries": 0},
        {"max_total_retries": 100},
        {"retry_budget": 2, "max_inflight_retries": 8, "max_total_retries": 40},
    ],
)
def test_retry_policy_valid_budgets(kwargs):
    RetryPolicy(max_attempts=3, **kwargs)


@pytest.mark.parametrize(
    "kwargs,match",
    [
        ({"retry_budget": -1}, "retry_budget"),
        ({"max_inflight_retries": -1}, "max_inflight_retries"),
        ({"max_total_retries": -5}, "max_total_retries"),
    ],
)
def test_retry_policy_negative_budgets_rejected(kwargs, match):
    with pytest.raises(ValueError, match=match):
        RetryPolicy(max_attempts=3, **kwargs)


# ----------------------------------------------------------------------
# affected_versions: what the engine validates pool names against
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fault,expected",
    [
        (NodeCrash(at_s=1.0, version="fast"), ("fast",)),
        (GrayFailure(at_s=1.0, version="slow"), ("slow",)),
        (TransientFaults(1.0, 2.0, 0.5, versions=("a", "b")), ("a", "b")),
        (TransientFaults(1.0, 2.0, 0.5), ()),
        (RetryStorm(1.0, 2.0, versions=("fast",)), ("fast",)),
        (RetryStorm(1.0, 2.0), ()),
        (CascadePolicy(version="slow"), ("slow",)),
        (CascadePolicy(), ()),
        (ColdStartWave(warmup_s=1.0, version="fast"), ("fast",)),
        (ColdStartWave(warmup_s=1.0), ()),
        (ThunderingHerd(1.0, 2.0), ()),
    ],
)
def test_affected_versions(fault, expected):
    assert affected_versions(fault) == expected


def test_engine_rejects_unknown_chaos_pool():
    """A typoed pool name in any chaos fault fails at engine construction."""
    from repro.core.configuration import EnsembleConfiguration
    from repro.core.policies import SingleVersionPolicy
    from repro.service.simulation import (
        ServingSimulator,
        build_replay_cluster,
        scenario_measurements,
    )

    toy = scenario_measurements()
    for fault in (
        GrayFailure(at_s=1.0, version="nope"),
        CascadePolicy(version="nope"),
        RetryStorm(1.0, 2.0, versions=("nope",)),
        ColdStartWave(warmup_s=1.0, version="nope"),
    ):
        with pytest.raises(ValueError, match="unknown version"):
            ServingSimulator(
                build_replay_cluster(toy, {"fast": 1}),
                configuration=EnsembleConfiguration(
                    "v", SingleVersionPolicy("fast")
                ),
                faults=(fault,),
            )
