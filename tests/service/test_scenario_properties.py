"""Randomized property-style tests over the scenario space.

Fifty seeded random :class:`ScenarioSpec`\\ s — random tier mixes, arrival
processes, batching, autoscaling, retry policies and fault schedules —
each asserting the engine's conservation laws hold (the invariant checker
runs inside every simulation) and that every submitted request resolves.
The fault-free slice additionally asserts zero behaviour drift: a spec
with no faults and no retries must reproduce, digest-for-digest, what a
plain engine run (no fault subsystem arguments at all) produces.

Seeds 0–19 run in the fast tier; the rest carry the ``slow`` marker and
run in CI's full tier (see pytest.ini / docs/SCENARIOS.md).
"""

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.service.simulation import (
    AutoscalerConfig,
    BatchingConfig,
    BurstyArrivals,
    DiurnalArrivals,
    NodeCrash,
    NodeSlowdown,
    PoissonArrivals,
    RetryPolicy,
    ScenarioSpec,
    ServingSimulator,
    SpikeArrivals,
    TransientFaults,
    build_replay_cluster,
    run_scenario,
    scenario_measurements,
)

N_SPECS = 50
FAST_SPECS = 20


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()


def _random_policy(rng):
    kind = rng.integers(0, 5)
    threshold = float(rng.choice([0.4, 0.5, 0.6, 0.7]))
    if kind == 0:
        return SingleVersionPolicy("fast")
    if kind == 1:
        return SingleVersionPolicy("slow")
    if kind == 2:
        return SequentialPolicy("fast", "slow", threshold)
    if kind == 3:
        return ConcurrentPolicy("fast", "slow", threshold)
    return EarlyTerminationPolicy("fast", "slow", threshold)


def _random_arrivals(rng):
    kind = rng.integers(0, 4)
    rate = float(rng.uniform(1.0, 6.0))
    if kind == 0:
        return PoissonArrivals(rate)
    if kind == 1:
        return BurstyArrivals(
            rate, rate * 5.0, mean_calm_s=4.0, mean_burst_s=1.0
        )
    if kind == 2:
        return SpikeArrivals(
            rate,
            spike_start_s=float(rng.uniform(1.0, 5.0)),
            spike_duration_s=float(rng.uniform(1.0, 4.0)),
            spike_multiplier=float(rng.uniform(2.0, 6.0)),
        )
    return DiurnalArrivals(
        rate,
        amplitude=float(rng.uniform(0.2, 0.8)),
        period_s=float(rng.uniform(10.0, 40.0)),
    )


def _random_faults(rng, versions):
    faults = []
    n_faults = int(rng.integers(1, 4))
    for _ in range(n_faults):
        version = str(rng.choice(versions))
        kind = rng.integers(0, 3)
        at = float(rng.uniform(0.5, 8.0))
        if kind == 0:
            recover = (
                at + float(rng.uniform(1.0, 6.0))
                if rng.uniform() < 0.7
                else None
            )
            faults.append(
                NodeCrash(
                    at_s=at,
                    version=version,
                    node_index=int(rng.integers(0, 3)),
                    recover_at_s=recover,
                )
            )
        elif kind == 1:
            faults.append(
                NodeSlowdown(
                    at_s=at,
                    version=version,
                    node_index=int(rng.integers(0, 3)),
                    speed_factor=float(rng.uniform(0.1, 0.8)),
                    until_s=at + float(rng.uniform(1.0, 8.0))
                    if rng.uniform() < 0.7
                    else None,
                )
            )
        else:
            faults.append(
                TransientFaults(
                    start_s=at,
                    end_s=at + float(rng.uniform(1.0, 8.0)),
                    failure_probability=float(rng.uniform(0.1, 0.9)),
                    versions=(version,) if rng.uniform() < 0.7 else None,
                )
            )
    return tuple(faults)


def _random_spec(seed, *, with_faults):
    rng = np.random.default_rng([seed, 20260728])
    policy = _random_policy(rng)
    versions = tuple(
        {v: None for v in policy.versions}  # ordered, unique
    )
    pools = {v: int(rng.integers(1, 4)) for v in versions}
    retry = (
        RetryPolicy(
            max_attempts=int(rng.integers(2, 4)),
            backoff_s=float(rng.uniform(0.0, 0.1)),
        )
        if with_faults
        else RetryPolicy()
    )
    return ScenarioSpec(
        name=f"random-{seed}",
        arrivals=_random_arrivals(rng),
        n_requests=int(rng.integers(30, 70)),
        pools=pools,
        configuration=EnsembleConfiguration(f"cfg_{seed}", policy),
        batching=BatchingConfig(
            max_batch_size=int(rng.integers(2, 6)),
            max_wait_s=float(rng.uniform(0.0, 0.1)),
        )
        if rng.uniform() < 0.5
        else None,
        autoscaler_config=AutoscalerConfig(
            min_nodes=1,
            max_nodes=int(rng.integers(3, 6)),
            scale_up_queue_depth=float(rng.uniform(1.0, 4.0)),
            evaluation_interval_s=float(rng.uniform(0.25, 1.0)),
            cooldown_s=float(rng.uniform(0.0, 1.0)),
        )
        if rng.uniform() < 0.4
        else None,
        retry=retry,
        faults=_random_faults(rng, versions) if with_faults else (),
        seed=seed,
    )


def _marked_seeds():
    return [
        pytest.param(seed, marks=pytest.mark.slow)
        if seed >= FAST_SPECS
        else seed
        for seed in range(N_SPECS)
    ]


@pytest.mark.parametrize("seed", _marked_seeds())
def test_random_faulty_scenarios_obey_invariants(seed, toy):
    """Invariants hold across the randomized fault-injection space."""
    spec = _random_spec(seed, with_faults=True)
    report = run_scenario(spec, toy, check_invariants=True)
    assert report.n_requests == spec.n_requests
    assert 0.0 <= report.availability <= 1.0
    assert report.total_retries >= 0
    # billed node-seconds stay non-negative and only name deployed pools
    for record in report.records:
        assert set(record.node_seconds) <= set(spec.pools)
        if record.failed:
            assert record.invocation_cost == 0.0


@pytest.mark.parametrize("seed", range(0, 30, 2))
def test_fault_free_specs_match_plain_engine_bit_for_bit(seed, toy):
    """No behaviour drift: the fault subsystem is invisible when unused."""
    spec = _random_spec(seed, with_faults=False)
    via_scenario = run_scenario(spec, toy, check_invariants=True)

    from repro.service.simulation import Autoscaler

    cluster = build_replay_cluster(toy, dict(spec.pools))
    plain = ServingSimulator(
        cluster,
        configuration=spec.configuration,
        batching=spec.batching,
        autoscaler=Autoscaler(spec.autoscaler_config)
        if spec.autoscaler_config is not None
        else None,
        seed=spec.seed,
    )
    direct = plain.run(
        spec.arrivals, spec.n_requests, payload_ids=toy.request_ids
    )
    assert via_scenario.digest() == direct.digest()
    assert via_scenario.total_retries == 0
    assert via_scenario.n_failed == 0
