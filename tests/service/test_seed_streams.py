"""The seed-stream registry: spawn keys stay disjoint and in sync.

Determinism rests on every derived generator — engine, faults, storm
buckets, admission, region shard roots — opening a *distinct* RNG
stream.  These tests pin three things: the registry's constants match
the literals at the actual construction sites, the audit catches
collisions, and the streams existing single-region consumers open are
exactly the ones the registry enumerates (so the regions subsystem's
spawning cannot have changed them).
"""

import inspect
import re

import numpy as np
import pytest

from repro.service.simulation import (
    SeedStreamCollision,
    audit_seed_streams,
    canonical_scenarios,
    chaos_scenarios,
    spawn_region_seed,
    streams_for_spec,
)
from repro.service.simulation.seeds import (
    ADMISSION_STREAM,
    FAULT_STREAM,
    REGION_STREAM,
    STORM_STREAM,
    scenario_stream_keys,
)


class TestRegistryMatchesConstructionSites:
    """A drifted literal would silently fork a stream; pin the sync."""

    def _literals(self, module) -> set:
        source = inspect.getsource(module)
        return {
            int(match, 16)
            for match in re.findall(
                r"default_rng\(\[[^]]*?(0x[0-9A-Fa-f]+)", source
            )
        }

    def test_engine_literals(self):
        from repro.service.simulation import engine

        assert self._literals(engine) == {FAULT_STREAM, STORM_STREAM}

    def test_admission_literal(self):
        from repro.service.control import plane

        assert self._literals(plane) == {ADMISSION_STREAM}

    def test_constants_are_pairwise_distinct(self):
        constants = (
            FAULT_STREAM, STORM_STREAM, ADMISSION_STREAM, REGION_STREAM
        )
        assert len(set(constants)) == len(constants)


class TestAudit:
    def test_passes_and_returns_mapping(self):
        streams = scenario_stream_keys(
            seed=7, n_storms=2, has_probabilistic_faults=True,
            has_control=True,
        )
        assert audit_seed_streams(streams) == streams
        assert streams["engine"] == (7,)
        assert streams["faults"] == (7, FAULT_STREAM)
        assert streams["storm[1]"] == (7, STORM_STREAM, 1)
        assert streams["admission"] == (7, ADMISSION_STREAM)

    def test_collision_raises_naming_both_consumers(self):
        with pytest.raises(SeedStreamCollision, match="alice.*bob"):
            audit_seed_streams([("alice", (7, 1)), ("bob", (7, 1))])

    def test_accepts_iterables_and_normalises_ints(self):
        with pytest.raises(SeedStreamCollision):
            audit_seed_streams([("a", (np.int64(7),)), ("b", (7,))])


class TestSingleRegionConsumers:
    """Every shipped scenario's stream family is audit-clean and exactly
    what the registry predicts — the regression guard for PR-era RNG
    consumers now that region shards spawn their own families."""

    @pytest.mark.parametrize(
        "name", sorted(canonical_scenarios()) + sorted(chaos_scenarios())
    )
    def test_scenario_streams_are_disjoint(self, name):
        scenarios = {**canonical_scenarios(), **chaos_scenarios()}
        spec = scenarios[name]
        streams = audit_seed_streams(streams_for_spec(spec))
        assert streams["engine"] == (spec.seed,)
        # The engine stream is always a bare seed; every derived stream
        # carries a registered discriminator constant.
        for key in streams.values():
            if len(key) > 1:
                assert key[1] in (
                    FAULT_STREAM, STORM_STREAM, ADMISSION_STREAM
                )

    def test_storm_scenario_opens_bucket_streams(self):
        spec = chaos_scenarios()["retry-storm"]
        streams = streams_for_spec(spec)
        assert "faults" in streams
        assert any(name.startswith("storm[") for name in streams)


class TestRegionSpawning:
    def test_spawned_seeds_are_unique_across_seeds_and_indices(self):
        spawned = {
            spawn_region_seed(seed, index)
            for seed in range(40)
            for index in range(25)
        }
        assert len(spawned) == 40 * 25

    def test_spawned_seed_is_stable(self):
        assert spawn_region_seed(31, 0) == spawn_region_seed(31, 0)
        assert spawn_region_seed(31, 0) != spawn_region_seed(31, 1)

    def test_multi_region_stream_union_is_disjoint(self):
        from repro.service.regions import (
            multi_region_streams,
            region_scenarios,
        )

        for spec in region_scenarios().values():
            streams = audit_seed_streams(multi_region_streams(spec))
            assert streams["root"] == (spec.seed,)
            for i, region in enumerate(spec.regions):
                assert streams[f"{region.name}/engine"] == (
                    spec.shard_seed(i),
                )
