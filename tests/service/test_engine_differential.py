"""Dual-engine differential harness: columnar vs the legacy oracle.

The columnar engine's whole correctness argument is *differential*: the
legacy scalar engine is retained verbatim as the oracle, and every
behaviour the report digest observes must be bit-identical between the
two.  This file is that argument, run continuously:

1. **Canonical scenarios** — all six degraded modes, in both fast mode
   and full invariant-checking mode, digest-identical across engines.
2. **Golden traces** — the columnar engine reproduces the PR 3 pinned
   digests directly from the checked-in golden files.
3. **Fuzzed scenario space** — :data:`N_SPECS` seeded random specs over
   arrivals x pools x policies x batching x autoscaling x faults x
   retries x control (enabled and disabled), each run under both
   engines with the invariant checker on (conservation laws) and
   compared digest-for-digest plus control-log-for-control-log.
4. **Eligibility** — the specs the columnar fast path claims to handle
   really run columnar (``engine_used`` says so), and the ones it must
   not handle fall back to legacy with a stated reason.
5. **Edge cases** — zero-request drains and single-request runs behave
   identically at the engine boundary.

Digest mismatches do not fail as two opaque hashes: the assertion
helper walks both reports with
:func:`~repro.service.simulation.first_divergence` and names the first
diverging field, record index and both values.

Seeds below :data:`FAST_SPECS` run in the fast tier; the rest carry the
``slow`` marker.  This module drives both engines explicitly, so it
shadows the suite-wide ``sim_engine`` matrix fixture to run once.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.service.control import AdmissionSpec, ControlSpec, SLOSpec
from repro.service.load_balancer import (
    JoinShortestQueuePolicy,
    LeastBusyPolicy,
    RoundRobinPolicy,
)
from repro.service.simulation import (
    AutoscalerConfig,
    BatchingConfig,
    BurstyArrivals,
    DiurnalArrivals,
    NodeCrash,
    NodeSlowdown,
    PoissonArrivals,
    RetryPolicy,
    ScenarioSpec,
    ServingSimulator,
    SpikeArrivals,
    TransientFaults,
    build_replay_cluster,
    canonical_scenarios,
    chaos_scenarios,
    first_divergence,
    run_scenario,
    scenario_measurements,
)

N_SPECS = 50
FAST_SPECS = 20

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


@pytest.fixture
def sim_engine():
    """Shadow the engine matrix: this module runs both engines itself."""
    return None


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()


# ----------------------------------------------------------------------
# assertion helpers (satellite: structured divergence instead of hashes)
# ----------------------------------------------------------------------
def assert_reports_identical(legacy, columnar):
    """Digest equality, explained: on mismatch, name the first diverging
    field and both values instead of printing two opaque hashes."""
    if legacy.digest() == columnar.digest():
        return
    divergence = first_divergence(legacy, columnar)
    if divergence is None:
        pytest.fail(
            "digests differ but no field-level divergence found — "
            "digest and first_divergence disagree on what they cover"
        )
    pytest.fail(divergence.describe("legacy", "columnar"))


def control_log_digest(report):
    """Standalone digest of just the control-plane action stream."""
    h = hashlib.sha256()
    for entry in report.control_log:
        h.update(
            f"{entry.time_s:.12e}|{entry.kind}|{entry.detail}\n".encode()
        )
    return h.hexdigest()


def run_both(spec, toy, *, check_invariants=True, selection_policy=None):
    legacy = run_scenario(
        spec,
        toy,
        check_invariants=check_invariants,
        selection_policy=selection_policy() if selection_policy else None,
        engine="legacy",
    )
    columnar = run_scenario(
        spec,
        toy,
        check_invariants=check_invariants,
        selection_policy=selection_policy() if selection_policy else None,
        engine="columnar",
    )
    return legacy, columnar


# ----------------------------------------------------------------------
# canonical scenarios and golden traces
# ----------------------------------------------------------------------
@pytest.mark.parametrize("check_invariants", [False, True], ids=["fast", "checked"])
@pytest.mark.parametrize("name", sorted(canonical_scenarios()))
def test_canonical_scenarios_digest_identical(name, check_invariants, toy):
    spec = canonical_scenarios()[name]
    legacy, columnar = run_both(spec, toy, check_invariants=check_invariants)
    assert_reports_identical(legacy, columnar)
    assert control_log_digest(legacy) == control_log_digest(columnar)


@pytest.mark.parametrize("name", ("baseline", "node-crash", "flaky"))
def test_columnar_reproduces_golden_traces(name, toy):
    """The columnar engine matches the PR 3 pinned digests directly."""
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    spec = canonical_scenarios()[name]
    report = run_scenario(spec, toy, check_invariants=True, engine="columnar")
    assert report.digest() == golden["digest"], (
        f"columnar run of {name!r} no longer matches its golden trace"
    )


# ----------------------------------------------------------------------
# fuzzed scenario space
# ----------------------------------------------------------------------
def _random_policy(rng):
    kind = rng.integers(0, 5)
    threshold = float(rng.choice([0.4, 0.5, 0.6, 0.7]))
    if kind == 0:
        return SingleVersionPolicy("fast")
    if kind == 1:
        return SingleVersionPolicy("slow")
    if kind == 2:
        return SequentialPolicy("fast", "slow", threshold)
    if kind == 3:
        return ConcurrentPolicy("fast", "slow", threshold)
    return EarlyTerminationPolicy("fast", "slow", threshold)


def _random_arrivals(rng):
    kind = rng.integers(0, 4)
    rate = float(rng.uniform(1.0, 6.0))
    if kind == 0:
        return PoissonArrivals(rate)
    if kind == 1:
        return BurstyArrivals(rate, rate * 5.0, mean_calm_s=4.0, mean_burst_s=1.0)
    if kind == 2:
        return SpikeArrivals(
            rate,
            spike_start_s=float(rng.uniform(1.0, 5.0)),
            spike_duration_s=float(rng.uniform(1.0, 4.0)),
            spike_multiplier=float(rng.uniform(2.0, 6.0)),
        )
    return DiurnalArrivals(
        rate,
        amplitude=float(rng.uniform(0.2, 0.8)),
        period_s=float(rng.uniform(10.0, 40.0)),
    )


def _random_faults(rng, versions):
    faults = []
    for _ in range(int(rng.integers(1, 4))):
        version = str(rng.choice(versions))
        kind = rng.integers(0, 3)
        at = float(rng.uniform(0.5, 8.0))
        if kind == 0:
            faults.append(
                NodeCrash(
                    at_s=at,
                    version=version,
                    node_index=int(rng.integers(0, 3)),
                    recover_at_s=at + float(rng.uniform(1.0, 6.0))
                    if rng.uniform() < 0.7
                    else None,
                )
            )
        elif kind == 1:
            faults.append(
                NodeSlowdown(
                    at_s=at,
                    version=version,
                    node_index=int(rng.integers(0, 3)),
                    speed_factor=float(rng.uniform(0.1, 0.8)),
                    until_s=at + float(rng.uniform(1.0, 8.0))
                    if rng.uniform() < 0.7
                    else None,
                )
            )
        else:
            faults.append(
                TransientFaults(
                    start_s=at,
                    end_s=at + float(rng.uniform(1.0, 8.0)),
                    failure_probability=float(rng.uniform(0.1, 0.9)),
                    versions=(version,) if rng.uniform() < 0.7 else None,
                )
            )
    return tuple(faults)


def _random_control(rng):
    """A closed-loop spec that actually acts under load: a tight latency
    SLO plus either probabilistic shedding or forced degradation."""
    return ControlSpec(
        window_s=float(rng.uniform(3.0, 8.0)),
        tick_interval_s=float(rng.uniform(0.25, 0.75)),
        slos=(
            SLOSpec(
                name="latency",
                max_p95_latency_s=float(rng.uniform(0.5, 2.0)),
                breach_after=int(rng.integers(1, 3)),
                clear_after=int(rng.integers(2, 6)),
            ),
        ),
        admission=AdmissionSpec(policy="probabilistic", shed_probability=0.8)
        if rng.uniform() < 0.5
        else AdmissionSpec(policy="degrade"),
    )


#: Within-pool selection policies the fuzz sweeps over (fresh instance
#: per run: round-robin carries a cursor).
_SELECTION = (None, JoinShortestQueuePolicy, LeastBusyPolicy, RoundRobinPolicy)


def _random_spec(seed):
    rng = np.random.default_rng([seed, 20260808])
    policy = _random_policy(rng)
    versions = tuple({v: None for v in policy.versions})
    pools = {v: int(rng.integers(1, 4)) for v in versions}
    with_faults = rng.uniform() < 0.4
    with_control = rng.uniform() < 0.35
    spec = ScenarioSpec(
        name=f"diff-{seed}",
        arrivals=_random_arrivals(rng),
        n_requests=int(rng.integers(30, 70)),
        pools=pools,
        configuration=EnsembleConfiguration(f"cfg_{seed}", policy),
        batching=BatchingConfig(
            max_batch_size=int(rng.integers(1, 6)),
            max_wait_s=float(rng.uniform(0.0, 0.1)),
        )
        if rng.uniform() < 0.6
        else None,
        autoscaler_config=AutoscalerConfig(
            min_nodes=1,
            max_nodes=int(rng.integers(3, 6)),
            scale_up_queue_depth=float(rng.uniform(1.0, 4.0)),
            evaluation_interval_s=float(rng.uniform(0.25, 1.0)),
            cooldown_s=float(rng.uniform(0.0, 1.0)),
        )
        if rng.uniform() < 0.3
        else None,
        retry=RetryPolicy(
            max_attempts=int(rng.integers(2, 4)),
            backoff_s=float(rng.uniform(0.0, 0.1)),
        )
        if with_faults
        else RetryPolicy(),
        faults=_random_faults(rng, versions) if with_faults else (),
        control=_random_control(rng) if with_control else None,
        seed=seed,
    )
    selection = _SELECTION[int(rng.integers(0, len(_SELECTION)))]
    return spec, selection


def _marked_seeds():
    return [
        pytest.param(seed, marks=pytest.mark.slow) if seed >= FAST_SPECS else seed
        for seed in range(N_SPECS)
    ]


@pytest.mark.parametrize("seed", _marked_seeds())
def test_fuzzed_specs_digest_identical(seed, toy):
    """Both engines agree — digests, conservation laws, control logs —
    across the randomized scenario space."""
    spec, selection = _random_spec(seed)
    legacy, columnar = run_both(
        spec, toy, check_invariants=True, selection_policy=selection
    )
    assert_reports_identical(legacy, columnar)
    assert control_log_digest(legacy) == control_log_digest(columnar)
    assert legacy.n_requests == spec.n_requests
    assert columnar.n_requests == spec.n_requests


# ----------------------------------------------------------------------
# eligibility: the fast path really runs, the fallback really falls back
# ----------------------------------------------------------------------
def _direct_sim(toy, policy, *, selection_policy=None, batching=True):
    cluster = build_replay_cluster(
        toy, {v: 2 for v in {*policy.versions}}, selection_policy=selection_policy
    )
    return ServingSimulator(
        cluster,
        configuration=EnsembleConfiguration("elig", policy),
        batching=BatchingConfig(max_batch_size=4, max_wait_s=0.01)
        if batching
        else None,
        seed=3,
        engine="columnar",
    )


@pytest.mark.parametrize(
    "policy",
    [
        SingleVersionPolicy("fast"),
        SequentialPolicy("fast", "slow", 0.6),
        ConcurrentPolicy("fast", "slow", 0.6),
        EarlyTerminationPolicy("fast", "slow", 0.6),
    ],
    ids=["single", "seq", "conc", "et"],
)
@pytest.mark.parametrize(
    "selection",
    [None, JoinShortestQueuePolicy, LeastBusyPolicy, RoundRobinPolicy],
    ids=["default", "jsq", "lb", "rr"],
)
def test_supported_shapes_run_columnar(policy, selection, toy):
    """Every policy x selection shape the fast path claims is exercised
    end to end without falling back — the differential suite is really
    testing columnar code, not a silent legacy fallback."""
    sim = _direct_sim(
        toy, policy, selection_policy=selection() if selection else None
    )
    report = sim.run(PoissonArrivals(4.0), 60, payload_ids=toy.request_ids)
    assert sim.engine_used == "columnar"
    assert sim.fallback_reason is None
    assert report.n_requests == 60


def test_unsupported_shapes_fall_back_with_reason(toy):
    """Structurally ineligible runs execute on the legacy oracle and say
    why; behaviour still matches a pure legacy run exactly."""
    spec = canonical_scenarios()["diurnal"]  # autoscaled -> ineligible
    cluster = build_replay_cluster(toy, dict(spec.pools))
    from repro.service.simulation import Autoscaler

    sim = ServingSimulator(
        cluster,
        configuration=spec.configuration,
        autoscaler=Autoscaler(spec.autoscaler_config),
        seed=spec.seed,
        engine="columnar",
    )
    report = sim.run(spec.arrivals, spec.n_requests, payload_ids=toy.request_ids)
    assert sim.engine_used == "legacy"
    assert sim.fallback_reason is not None
    legacy = run_scenario(spec, toy, engine="legacy")
    assert_reports_identical(legacy, report)


#: Each chaos scenario and the fault class its fallback reason must name.
_CHAOS_FALLBACK = {
    "gray-failure": "GrayFailure",
    "cascade": "CascadePolicy",
    "retry-storm": "RetryStorm",
    "cold-start": "ColdStartWave",
    "thundering-herd": "ThunderingHerd",
}


@pytest.mark.parametrize("name", sorted(_CHAOS_FALLBACK))
def test_chaos_specs_fall_back_with_named_reason(name, toy):
    """Every chaos fault type makes the columnar path ineligible, the
    fallback reason names the fault class, and the replayed legacy run is
    bit-identical to a pure legacy run."""
    spec = chaos_scenarios()[name]
    from repro.service.simulation import Autoscaler

    sim = ServingSimulator(
        build_replay_cluster(toy, dict(spec.pools)),
        configuration=spec.configuration,
        batching=spec.batching,
        autoscaler=Autoscaler(spec.autoscaler_config)
        if spec.autoscaler_config is not None
        else None,
        faults=spec.faults,
        retry=spec.retry,
        check_invariants=True,
        seed=spec.seed,
        engine="columnar",
    )
    report = sim.run(
        spec.arrivals,
        spec.n_requests,
        tolerance=spec.tolerance,
        objective=spec.objective,
        payload_ids=toy.request_ids,
    )
    assert sim.engine_used == "legacy"
    assert "fault schedule present" in sim.fallback_reason
    assert _CHAOS_FALLBACK[name] in sim.fallback_reason
    legacy = run_scenario(spec, toy, check_invariants=True, engine="legacy")
    assert_reports_identical(legacy, report)


@pytest.mark.parametrize("name", sorted(_CHAOS_FALLBACK))
def test_chaos_scenarios_digest_identical_across_engines(name, toy):
    """engine="columnar" on a chaos spec means 'fall back and replay' —
    the report must match the legacy oracle digest-for-digest."""
    spec = chaos_scenarios()[name]
    legacy, columnar = run_both(spec, toy, check_invariants=True)
    assert_reports_identical(legacy, columnar)
    assert control_log_digest(legacy) == control_log_digest(columnar)


def test_fuzzed_space_exercises_the_columnar_path(toy):
    """A substantial fraction of the fuzzed specs must be genuinely
    columnar-eligible, or the differential sweep proves nothing."""
    columnar_runs = 0
    for seed in range(N_SPECS):
        spec, selection = _random_spec(seed)
        cluster = build_replay_cluster(
            toy, dict(spec.pools),
            selection_policy=selection() if selection else None,
        )
        from repro.service.simulation import Autoscaler

        sim = ServingSimulator(
            cluster,
            configuration=spec.configuration,
            batching=spec.batching,
            autoscaler=Autoscaler(spec.autoscaler_config)
            if spec.autoscaler_config is not None
            else None,
            retry=spec.retry,
            faults=spec.faults,
            seed=spec.seed,
            engine="columnar",
        )
        sim.run(spec.arrivals, spec.n_requests, payload_ids=toy.request_ids)
        if sim.engine_used == "columnar":
            columnar_runs += 1
    assert columnar_runs >= N_SPECS // 4, (
        f"only {columnar_runs}/{N_SPECS} fuzzed specs ran columnar — "
        "the differential sweep is mostly testing the fallback"
    )


# ----------------------------------------------------------------------
# engine-boundary edge cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["legacy", "columnar"])
def test_zero_request_drain_raises_identically(engine, toy):
    sim = ServingSimulator(
        build_replay_cluster(toy, {"fast": 1}),
        configuration=EnsembleConfiguration("z", SingleVersionPolicy("fast")),
        engine=engine,
    )
    with pytest.raises(ValueError, match="at least one record"):
        sim.drain()


def test_single_request_run_digest_identical(toy):
    spec = ScenarioSpec(
        name="one",
        arrivals=PoissonArrivals(2.0),
        n_requests=1,
        pools={"fast": 1, "slow": 1},
        configuration=EnsembleConfiguration(
            "one", SequentialPolicy("fast", "slow", 0.6)
        ),
        batching=BatchingConfig(max_batch_size=4, max_wait_s=0.01),
        seed=5,
    )
    legacy, columnar = run_both(spec, toy)
    assert_reports_identical(legacy, columnar)
    assert legacy.n_requests == 1


def test_negative_arrival_time_raises_identically(toy):
    """The bulk columnar submit mirrors legacy's scheduling guard, down
    to the message and the partially-consumed counter state."""

    class BadArrivals:
        def times(self, n, rng):
            return np.array([0.5, -0.25, 1.0])

    errors = {}
    for engine in ("legacy", "columnar"):
        sim = ServingSimulator(
            build_replay_cluster(toy, {"fast": 1}),
            configuration=EnsembleConfiguration(
                "bad", SingleVersionPolicy("fast")
            ),
            engine=engine,
        )
        with pytest.raises(ValueError) as excinfo:
            sim.run(BadArrivals(), 3, payload_ids=toy.request_ids)
        errors[engine] = (str(excinfo.value), sim._counter, sim._remaining)
    assert errors["legacy"] == errors["columnar"]
