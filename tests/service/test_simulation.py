"""Tests for the discrete-event serving simulator.

Covers the virtual-clock event loop, arrival processes, node-level
submit/drain and batching, the autoscaler's triggers and floors, and the
end-to-end engine semantics of each ensemble kind under load.
"""

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.core.router import RoutingRuleTable, TierRouter
from repro.service.instances import get_instance_type
from repro.service.measurement import MeasurementSet
from repro.service.node import CallableVersion, ServiceNode, VersionResult
from repro.service.request import Objective
from repro.service.simulation import (
    Autoscaler,
    AutoscalerConfig,
    BatchingConfig,
    BurstyArrivals,
    EventLoop,
    PoissonArrivals,
    ServingSimulator,
    TraceArrivals,
    build_replay_cluster,
)


# ----------------------------------------------------------------------
# shared toy measurement set
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def toy_measurements():
    """Two versions: a fast/confident one and a slow/accurate one."""
    rng = np.random.default_rng(7)
    n = 50
    ids = tuple(f"r{i:03d}" for i in range(n))
    fast_conf = rng.uniform(0.2, 1.0, n)
    return MeasurementSet(
        service="toy",
        request_ids=ids,
        versions=("fast", "slow"),
        error=np.column_stack(
            [rng.uniform(0.1, 0.3, n), rng.uniform(0.0, 0.05, n)]
        ),
        latency_s=np.column_stack([np.full(n, 0.05), np.full(n, 0.4)]),
        confidence=np.column_stack([fast_conf, np.full(n, 0.95)]),
        version_instances={"fast": "cpu.medium", "slow": "cpu.medium"},
    )


def _config(policy):
    return EnsembleConfiguration(config_id="cfg", policy=policy)


def _simulate(measurements, policy, *, pools, rate=3.0, n=150, **kwargs):
    cluster = build_replay_cluster(measurements, pools)
    sim = ServingSimulator(
        cluster,
        configuration=_config(policy),
        seed=11,
        check_invariants=True,
        **kwargs,
    )
    return sim.run(
        PoissonArrivals(rate), n, payload_ids=measurements.request_ids
    )


# ----------------------------------------------------------------------
# event loop
# ----------------------------------------------------------------------
class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(2.0, lambda: fired.append("late"))
        loop.schedule_at(1.0, lambda: fired.append("early"))
        loop.run()
        assert fired == ["early", "late"]
        assert loop.now == 2.0

    def test_ties_fire_in_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("a", "b", "c"):
            loop.schedule_at(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_at(1.0, lambda: fired.append("cancelled"))
        loop.schedule_at(2.0, lambda: fired.append("kept"))
        event.cancel()
        loop.run()
        assert fired == ["kept"]

    def test_cannot_schedule_in_the_past(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: loop.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            loop.run()

    def test_events_may_schedule_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(
            1.0, lambda: loop.schedule(0.5, lambda: fired.append(loop.now))
        )
        loop.run()
        assert fired == [1.5]


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class TestArrivals:
    def test_poisson_mean_rate(self):
        rng = np.random.default_rng(3)
        times = PoissonArrivals(10.0).times(5000, rng)
        assert np.all(np.diff(times) >= 0.0)
        rate = len(times) / times[-1]
        assert rate == pytest.approx(10.0, rel=0.1)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).times(0, np.random.default_rng(0))

    def test_bursty_is_sorted_and_faster_than_base(self):
        process = BurstyArrivals(2.0, 50.0, mean_calm_s=5.0, mean_burst_s=1.0)
        rng = np.random.default_rng(4)
        times = process.times(2000, rng)
        assert np.all(np.diff(times) >= 0.0)
        observed = len(times) / times[-1]
        assert observed > 2.0  # bursts push the average above the calm rate
        assert process.mean_rate == pytest.approx(10.0)

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(5.0, 2.0)  # burst slower than base

    def test_trace_replays_and_bounds(self):
        trace = TraceArrivals([0.0, 0.5, 1.5])
        rng = np.random.default_rng(0)
        assert list(trace.times(2, rng)) == [0.0, 0.5]
        with pytest.raises(ValueError):
            trace.times(4, rng)
        with pytest.raises(ValueError):
            TraceArrivals([1.0, 0.5])  # not sorted


# ----------------------------------------------------------------------
# batching model + node queueing primitives
# ----------------------------------------------------------------------
class TestBatching:
    def test_sublinear_batch_time(self):
        cfg = BatchingConfig(max_batch_size=8, latency_exponent=0.7)
        solo = [1.0, 1.0, 1.0, 1.0]
        wall = cfg.batch_service_time(solo)
        assert max(solo) <= wall < sum(solo)
        assert wall == pytest.approx(4.0 ** 0.7)

    def test_linear_exponent_recovers_serial_worst_case(self):
        cfg = BatchingConfig(max_batch_size=4, latency_exponent=1.0)
        assert cfg.batch_service_time([0.5, 0.5]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingConfig(max_wait_s=-1.0)
        with pytest.raises(ValueError):
            BatchingConfig(latency_exponent=1.5)
        with pytest.raises(ValueError):
            BatchingConfig(max_batch_size=2).batch_service_time([1.0] * 3)


def _echo_node(compute_seconds=1.0):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version="v",
            output=payload,
            error=0.0,
            confidence=0.9,
            compute_seconds=compute_seconds,
        )

    return ServiceNode(
        CallableVersion("v", handler), get_instance_type("cpu.medium")
    )


class TestNodeQueueing:
    def test_process_matches_submit_drain(self):
        direct, queued = _echo_node(2.0), _echo_node(2.0)
        result, latency = direct.process("r1", "x")
        queued.submit("r1", "x")
        completion = queued.drain()[0]
        assert completion.result.output == result.output
        assert completion.service_time_s == pytest.approx(latency)
        assert direct.busy_seconds == pytest.approx(queued.busy_seconds)

    def test_drain_batches_fifo(self):
        node = _echo_node(1.0)
        for i in range(5):
            node.submit(f"r{i}", i)
        cfg = BatchingConfig(max_batch_size=4, latency_exponent=0.7)
        completions = node.drain(batching=cfg)
        assert [c.batch_size for c in completions] == [4, 4, 4, 4, 1]
        first_batch = completions[0]
        assert first_batch.service_time_s == pytest.approx(4.0 ** 0.7)
        assert first_batch.amortized_seconds == pytest.approx(4.0 ** 0.7 / 4)
        # the trailing single request starts after the batch finishes
        assert completions[4].started_at == pytest.approx(first_batch.finished_at)

    def test_cancel_removes_only_queued_work(self):
        node = _echo_node()
        node.submit("r1", None)
        assert node.cancel("r1") is True
        assert node.cancel("r1") is False
        assert node.queue_depth == 0


# ----------------------------------------------------------------------
# autoscaler decisions
# ----------------------------------------------------------------------
class TestAutoscaler:
    def test_scales_up_on_queue_depth(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_queue_depth=4.0))
        delta = scaler.decide(
            "v", n_nodes=2, queue_depth=10, utilization=0.5, now=10.0
        )
        assert delta == 1

    def test_scales_up_on_utilization(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_utilization=0.85))
        delta = scaler.decide(
            "v", n_nodes=2, queue_depth=0, utilization=0.9, now=10.0
        )
        assert delta == 1

    def test_respects_max_nodes(self):
        scaler = Autoscaler(AutoscalerConfig(max_nodes=2))
        delta = scaler.decide(
            "v", n_nodes=2, queue_depth=100, utilization=1.0, now=10.0
        )
        assert delta == 0

    def test_scale_down_floors_at_min_nodes(self):
        scaler = Autoscaler(AutoscalerConfig(min_nodes=2, cooldown_s=0.0))
        for tick in range(5):
            n = 4 - len(scaler.events)
            delta = scaler.decide(
                "v", n_nodes=n, queue_depth=0, utilization=0.0, now=float(tick)
            )
            if delta == -1:
                scaler.record(
                    "v", old_size=n, new_size=n - 1, now=float(tick), reason="idle"
                )
        # shrinks 4 -> 3 -> 2 and then holds the floor
        assert [e.new_size for e in scaler.events] == [3, 2]

    def test_cooldown_suppresses_flapping(self):
        scaler = Autoscaler(AutoscalerConfig(cooldown_s=5.0))
        scaler.record("v", old_size=1, new_size=2, now=0.0, reason="queue-depth")
        assert (
            scaler.decide("v", n_nodes=2, queue_depth=50, utilization=1.0, now=2.0)
            == 0
        )
        assert (
            scaler.decide("v", n_nodes=2, queue_depth=50, utilization=1.0, now=6.0)
            == 1
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_nodes=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_nodes=4, max_nodes=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(
                scale_down_utilization=0.9, scale_up_utilization=0.8
            )


# ----------------------------------------------------------------------
# the engine, end to end
# ----------------------------------------------------------------------
class TestServingSimulator:
    def test_single_version_low_load_has_no_queueing(self, toy_measurements):
        report = _simulate(
            toy_measurements,
            SingleVersionPolicy("fast"),
            pools={"fast": 2},
            rate=1.0,
            n=60,
        )
        assert report.n_requests == 60
        assert report.mean_queue_wait_s < 0.01
        assert report.mean_latency_s == pytest.approx(0.05, rel=0.05)
        assert report.escalation_rate == 0.0

    def test_latency_grows_with_offered_load(self, toy_measurements):
        slow = SingleVersionPolicy("slow")
        light = _simulate(
            toy_measurements, slow, pools={"slow": 2}, rate=1.0, n=150
        )
        heavy = _simulate(
            toy_measurements, slow, pools={"slow": 2}, rate=4.5, n=150
        )
        assert heavy.p95_latency_s > light.p95_latency_s
        assert heavy.mean_queue_wait_s > light.mean_queue_wait_s
        assert heavy.p99_latency_s >= heavy.p95_latency_s >= heavy.p50_latency_s

    def test_seq_escalates_and_bills_both_versions(self, toy_measurements):
        report = _simulate(
            toy_measurements,
            SequentialPolicy("fast", "slow", 0.6),
            pools={"fast": 2, "slow": 2},
            rate=2.0,
        )
        escalated = [r for r in report.records if r.escalated]
        accepted = [r for r in report.records if not r.escalated]
        assert escalated and accepted
        assert all(
            r.versions_used == ("fast", "slow") for r in escalated
        )
        assert all(r.versions_used == ("fast",) for r in accepted)
        # measured confidences drive escalation: the fraction matches the table
        expected = float(
            np.mean(toy_measurements.column("fast", "confidence") < 0.6)
        )
        assert report.escalation_rate == pytest.approx(expected, abs=0.1)

    def test_et_costs_at_most_conc(self, toy_measurements):
        kwargs = dict(pools={"fast": 2, "slow": 2}, rate=2.0, n=120)
        conc = _simulate(
            toy_measurements, ConcurrentPolicy("fast", "slow", 0.6), **kwargs
        )
        et = _simulate(
            toy_measurements,
            EarlyTerminationPolicy("fast", "slow", 0.6),
            **kwargs,
        )
        assert et.total_invocation_cost < conc.total_invocation_cost
        # both answer confident requests at the fast version's pace
        assert et.p50_latency_s <= conc.p50_latency_s + 1e-9

    def test_batch_timeout_flushes_partial_batch(self, toy_measurements):
        cluster = build_replay_cluster(toy_measurements, {"fast": 1})
        sim = ServingSimulator(
            cluster,
            configuration=_config(SingleVersionPolicy("fast")),
            batching=BatchingConfig(max_batch_size=32, max_wait_s=0.5),
            seed=0,
            check_invariants=True,
        )
        trace = TraceArrivals([0.0, 0.1])
        report = sim.run(trace, 2, payload_ids=toy_measurements.request_ids)
        # Neither request fills the batch; the timeout flushes both together
        # at t=0.5, so they finish at the same instant.
        finishes = sorted(r.finished_s for r in report.records)
        assert finishes[0] == pytest.approx(finishes[1])
        assert finishes[0] == pytest.approx(0.5 + 2 ** 0.7 * 0.05)

    def test_batching_raises_throughput_under_saturation(self, toy_measurements):
        kwargs = dict(pools={"slow": 1}, rate=8.0, n=120)
        unbatched = _simulate(
            toy_measurements, SingleVersionPolicy("slow"), **kwargs
        )
        batched = _simulate(
            toy_measurements,
            SingleVersionPolicy("slow"),
            batching=BatchingConfig(max_batch_size=8, max_wait_s=0.05),
            **kwargs,
        )
        assert batched.throughput_rps > unbatched.throughput_rps
        assert batched.p95_latency_s < unbatched.p95_latency_s

    def test_autoscaler_grows_overloaded_pool(self, toy_measurements):
        cluster = build_replay_cluster(toy_measurements, {"slow": 1})
        scaler = Autoscaler(
            AutoscalerConfig(
                max_nodes=6,
                scale_up_queue_depth=2.0,
                evaluation_interval_s=0.25,
                cooldown_s=0.0,
            )
        )
        sim = ServingSimulator(
            cluster,
            configuration=_config(SingleVersionPolicy("slow")),
            autoscaler=scaler,
            seed=5,
            check_invariants=True,
        )
        report = sim.run(
            PoissonArrivals(8.0), 150, payload_ids=toy_measurements.request_ids
        )
        ups = [e for e in report.scaling_events if e.new_size > e.old_size]
        assert ups, "overload should trigger at least one scale-up"
        assert max(e.new_size for e in report.scaling_events) <= 6

    def test_autoscaler_returns_to_min_after_burst(self, toy_measurements):
        cluster = build_replay_cluster(toy_measurements, {"fast": 1})
        scaler = Autoscaler(
            AutoscalerConfig(
                min_nodes=1,
                max_nodes=4,
                scale_up_queue_depth=1.0,
                scale_down_utilization=0.5,
                evaluation_interval_s=0.25,
                cooldown_s=0.0,
            )
        )
        sim = ServingSimulator(
            cluster,
            configuration=_config(SingleVersionPolicy("fast")),
            autoscaler=scaler,
            seed=6,
            check_invariants=True,
        )
        # a hard burst followed by a long quiet tail of stragglers
        burst = list(np.linspace(0.0, 0.5, 60)) + [3.0, 6.0, 9.0, 12.0]
        report = sim.run(
            TraceArrivals(burst),
            len(burst),
            payload_ids=toy_measurements.request_ids,
        )
        assert any(e.new_size > e.old_size for e in report.scaling_events)
        assert report.final_pool_sizes["fast"] == 1  # scaled back to the floor

    def test_warmed_cluster_does_not_trigger_spurious_scale_up(
        self, toy_measurements
    ):
        from repro.service.request import ServiceRequest

        cluster = build_replay_cluster(toy_measurements, {"fast": 2})
        # Accumulate pre-simulation busy time via the replay path.
        for rid in toy_measurements.request_ids[:20]:
            cluster.serve_with_version(
                "fast", ServiceRequest(request_id=f"w_{rid}", payload=rid)
            )
        scaler = Autoscaler(
            AutoscalerConfig(
                max_nodes=6, evaluation_interval_s=0.5, cooldown_s=0.0
            )
        )
        sim = ServingSimulator(
            cluster,
            configuration=_config(SingleVersionPolicy("fast")),
            autoscaler=scaler,
            seed=3,
            check_invariants=True,
        )
        # Light load: a fresh cluster would produce zero scale-ups, and a
        # warmed one must not differ (the baseline is seeded at init).
        report = sim.run(
            PoissonArrivals(1.0), 40, payload_ids=toy_measurements.request_ids
        )
        assert not [
            e for e in report.scaling_events if e.new_size > e.old_size
        ]

    def test_et_cancel_rearms_flush_for_new_head(self, toy_measurements):
        from repro.core.router import RoutingRuleTable, TierRouter
        from repro.service.request import ServiceRequest

        # Custom table: fast confidence is 0.9 for "hi" and 0.1 for "lo".
        ids = ("hi", "lo")
        ms = MeasurementSet(
            service="t",
            request_ids=ids,
            versions=("fast", "slow"),
            error=np.zeros((2, 2)),
            latency_s=np.array([[0.01, 0.3], [0.01, 0.3]]),
            confidence=np.array([[0.9, 0.95], [0.1, 0.95]]),
            version_instances={"fast": "cpu.medium", "slow": "cpu.medium"},
        )
        et = EnsembleConfiguration(
            "et", EarlyTerminationPolicy("fast", "slow", 0.5)
        )
        fast_only = _config(SingleVersionPolicy("fast"))
        table = RoutingRuleTable(
            objective=Objective.RESPONSE_TIME,
            baseline=fast_only,
            rules={0.10: et},
        )
        sim = ServingSimulator(
            build_replay_cluster(ms, {"fast": 1, "slow": 1}),
            router=TierRouter({Objective.RESPONSE_TIME: table}),
            batching=BatchingConfig(max_batch_size=3, max_wait_s=0.5),
            seed=0,
            check_invariants=True,
        )
        # r1 (et, confident) arms the slow node's flush from t=0; r2 fills
        # the fast batch without touching the slow pool; r3 (et, not
        # confident) joins the slow queue at t=0.08.
        sim.submit(
            ServiceRequest("r1", "hi", tolerance=0.10), at_time=0.0
        )
        sim.submit(ServiceRequest("r2", "hi", tolerance=0.0), at_time=0.04)
        sim.submit(
            ServiceRequest("r3", "lo", tolerance=0.10), at_time=0.08
        )
        report = sim.drain()
        by_id = {r.request_id: r for r in report.records}
        assert by_id["r1"].versions_used == ("fast",)  # cancelled cleanly
        assert by_id["r3"].escalated
        # r1's cancellation must re-arm the flush from r3's enqueue time
        # (0.08 + 0.5), not fire the stale t=0.5 deadline armed by r1.
        slow_start = by_id["r3"].finished_s - 0.3
        assert slow_start == pytest.approx(0.58, abs=1e-6)

    def test_router_driven_tiering(self, toy_measurements):
        baseline = _config(SingleVersionPolicy("slow"))
        loose = EnsembleConfiguration(
            "cfg_loose", SequentialPolicy("fast", "slow", 0.5)
        )
        table = RoutingRuleTable(
            objective=Objective.RESPONSE_TIME,
            baseline=baseline,
            rules={0.10: loose},
        )
        router = TierRouter({Objective.RESPONSE_TIME: table})
        cluster = build_replay_cluster(
            toy_measurements, {"fast": 1, "slow": 1}
        )
        sim = ServingSimulator(
            cluster, router=router, seed=2, check_invariants=True
        )
        report = sim.run(
            PoissonArrivals(2.0),
            80,
            tolerance=0.10,
            payload_ids=toy_measurements.request_ids,
        )
        # the 10% tier rides the seq ensemble, not the baseline
        assert any(r.versions_used == ("fast",) for r in report.records)
        assert all(r.tier == 0.10 for r in report.records)

    def test_requires_exactly_one_of_router_or_configuration(
        self, toy_measurements
    ):
        cluster = build_replay_cluster(toy_measurements, {"fast": 1})
        with pytest.raises(ValueError):
            ServingSimulator(cluster)

    def test_simulation_after_replay_traffic(self, toy_measurements):
        from repro.service.request import ServiceRequest

        cluster = build_replay_cluster(toy_measurements, {"fast": 1})
        # Synchronous replay traffic advances node.busy_until on its own
        # clock; a fresh simulator must still run (it owns the timeline).
        for rid in toy_measurements.request_ids[:3]:
            cluster.serve_with_version(
                "fast", ServiceRequest(request_id=f"warm_{rid}", payload=rid)
            )
        sim = ServingSimulator(
            cluster, configuration=_config(SingleVersionPolicy("fast")), seed=0
        )
        report = sim.run(
            PoissonArrivals(2.0), 10, payload_ids=toy_measurements.request_ids
        )
        assert report.n_requests == 10

    def test_simulator_refuses_cluster_with_queued_work(self, toy_measurements):
        from repro.service.request import ServiceRequest

        cluster = build_replay_cluster(toy_measurements, {"fast": 1})
        cluster.submit(
            "fast",
            ServiceRequest(
                request_id="stray", payload=toy_measurements.request_ids[0]
            ),
        )
        with pytest.raises(ValueError, match="queued work"):
            ServingSimulator(
                cluster, configuration=_config(SingleVersionPolicy("fast"))
            )

    def test_empty_payload_ids_rejected(self, toy_measurements):
        cluster = build_replay_cluster(toy_measurements, {"fast": 1})
        sim = ServingSimulator(
            cluster, configuration=_config(SingleVersionPolicy("fast")), seed=0
        )
        with pytest.raises(ValueError, match="payload_ids"):
            sim.run(PoissonArrivals(1.0), 5, payload_ids=[])

    def test_simulator_is_single_use(self, toy_measurements):
        cluster = build_replay_cluster(toy_measurements, {"fast": 1})
        sim = ServingSimulator(
            cluster,
            configuration=_config(SingleVersionPolicy("fast")),
            seed=0,
            check_invariants=True,
        )
        sim.run(PoissonArrivals(2.0), 10, payload_ids=toy_measurements.request_ids)
        with pytest.raises(ValueError, match="single-use"):
            sim.run(
                PoissonArrivals(2.0), 10, payload_ids=toy_measurements.request_ids
            )

    def test_deterministic_for_fixed_seed(self, toy_measurements):
        a = _simulate(
            toy_measurements, SingleVersionPolicy("fast"), pools={"fast": 2}
        )
        b = _simulate(
            toy_measurements, SingleVersionPolicy("fast"), pools={"fast": 2}
        )
        assert a.p95_latency_s == b.p95_latency_s
        assert a.total_invocation_cost == b.total_invocation_cost
