"""Tests for node-selection policies and load-balancer pool mutation."""

import pytest

from repro.service.instances import get_instance_type
from repro.service.load_balancer import (
    JoinShortestQueuePolicy,
    LeastBusyPolicy,
    LoadBalancer,
    RoundRobinPolicy,
)
from repro.service.node import CallableVersion, ServiceNode, VersionResult


def _echo_version(name: str, compute_seconds: float = 1.0, confidence: float = 0.9):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version=name,
            output=f"{name}:{payload}",
            error=0.0,
            confidence=confidence,
            compute_seconds=compute_seconds,
        )

    return CallableVersion(name, handler)


def _nodes(name: str, n: int, compute_seconds: float = 1.0):
    inst = get_instance_type("cpu.medium")
    return [
        ServiceNode(_echo_version(name, compute_seconds), inst) for _ in range(n)
    ]


class TestRoundRobinPolicy:
    def test_cycles_evenly(self):
        policy = RoundRobinPolicy()
        pool = _nodes("v", 3)
        picks = [policy.select("v", pool) for _ in range(6)]
        assert picks == pool + pool

    def test_cursor_stays_bounded(self):
        policy = RoundRobinPolicy()
        pool = _nodes("v", 3)
        for _ in range(100):
            policy.select("v", pool)
        assert 0 <= policy._cursor["v"] < len(pool)

    def test_pool_shrink_restarts_rotation(self):
        policy = RoundRobinPolicy()
        pool = _nodes("v", 5)
        for _ in range(3):
            policy.select("v", pool)  # cursor now 3
        shrunk = pool[:2]
        picks = [policy.select("v", shrunk) for _ in range(4)]
        # The stale cursor (3) exceeds the new pool; rotation restarts at the
        # head instead of landing on an arbitrary survivor.
        assert picks == [shrunk[0], shrunk[1], shrunk[0], shrunk[1]]

    def test_pool_grow_visits_new_node(self):
        policy = RoundRobinPolicy()
        pool = _nodes("v", 2)
        for _ in range(2):
            policy.select("v", pool)
        grown = pool + _nodes("v", 1)
        picks = [policy.select("v", grown) for _ in range(3)]
        assert grown[2] in picks

    def test_reset_one_version_and_all(self):
        policy = RoundRobinPolicy()
        pool_a, pool_b = _nodes("a", 2), _nodes("b", 2)
        policy.select("a", pool_a)
        policy.select("b", pool_b)
        policy.reset("a")
        assert policy.select("a", pool_a) is pool_a[0]
        policy.reset()
        assert policy.select("b", pool_b) is pool_b[0]

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy().select("v", [])

    def test_independent_cursors_per_version(self):
        policy = RoundRobinPolicy()
        pool_a, pool_b = _nodes("a", 2), _nodes("b", 2)
        assert policy.select("a", pool_a) is pool_a[0]
        assert policy.select("b", pool_b) is pool_b[0]
        assert policy.select("a", pool_a) is pool_a[1]


class TestLeastBusyPolicy:
    def test_ties_break_to_first_node(self):
        policy = LeastBusyPolicy()
        pool = _nodes("v", 3)
        assert policy.select("v", pool) is pool[0]

    def test_prefers_idle_node(self):
        policy = LeastBusyPolicy()
        pool = _nodes("v", 2)
        pool[0].process("r1", None)
        assert policy.select("v", pool) is pool[1]

    def test_balances_over_time(self):
        pool = _nodes("v", 2)
        balancer = LoadBalancer({"v": pool}, selection_policy=LeastBusyPolicy())
        for i in range(4):
            balancer.dispatch("v", f"r{i}", None)
        assert [node.requests_served for node in pool] == [2, 2]

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            LeastBusyPolicy().select("v", [])


class TestJoinShortestQueuePolicy:
    def test_prefers_empty_queue(self):
        policy = JoinShortestQueuePolicy()
        pool = _nodes("v", 2)
        pool[0].submit("r1", None)
        assert policy.select("v", pool) is pool[1]

    def test_ties_break_on_busy_until(self):
        policy = JoinShortestQueuePolicy()
        pool = _nodes("v", 2)
        pool[0].busy_until = 5.0
        assert policy.select("v", pool) is pool[1]

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            JoinShortestQueuePolicy().select("v", [])


class TestPoolMutation:
    def _balancer(self):
        pool = _nodes("v", 2)
        return LoadBalancer({"v": pool}), pool

    def test_add_node_grows_pool_and_resets_rotation(self):
        balancer, pool = self._balancer()
        balancer.dispatch("v", "r1", None)  # cursor advanced to 1
        extra = _nodes("v", 1)[0]
        balancer.add_node("v", extra)
        assert balancer.pool_size("v") == 3
        # rotation restarted: next dispatch hits the head node again
        balancer.dispatch("v", "r2", None)
        assert pool[0].requests_served == 2

    def test_remove_node_prefers_idle(self):
        balancer, pool = self._balancer()
        pool[0].submit("r1", None)
        removed = balancer.remove_node("v", now=0.0)
        assert removed is pool[1]
        assert balancer.pool_size("v") == 1

    def test_remove_node_returns_none_when_all_busy(self):
        balancer, pool = self._balancer()
        for node in pool:
            node.submit("rq", None)
        assert balancer.remove_node("v", now=0.0) is None
        assert balancer.pool_size("v") == 2

    def test_forced_remove_requeues_pending_work(self):
        balancer, pool = self._balancer()
        # load both nodes so no idle candidate exists
        for node in pool:
            node.submit("stuck", "p")
        removed = balancer.remove_node("v", now=0.0, only_idle=False)
        assert removed is not None
        assert removed.queue_depth == 0  # its work moved, not dropped
        assert balancer.queue_depths() == {"v": 2}
        completions = balancer.drain()
        assert len(completions["v"]) == 2

    def test_forced_remove_requeues_in_fifo_order(self):
        pool = _nodes("v", 2)
        balancer = LoadBalancer({"v": pool})
        nodes = balancer.nodes_of("v")
        # survivor holds newer work; the evicted tail node holds older work
        nodes[0].submit("newer", "p", now=5.0)
        nodes[1].submit("old", "p", now=1.0)
        removed = balancer.remove_node("v", now=0.0, only_idle=False)
        assert removed is nodes[1]  # forced eviction takes the tail node
        survivor = balancer.nodes_of("v")[0]
        assert survivor is nodes[0]
        # the migrated older request merges AHEAD of the newer one
        assert survivor.oldest_enqueued_at == 1.0
        assert [q.request_id for q in survivor.pop_batch(2)] == ["old", "newer"]

    def test_remove_last_node_raises(self):
        pool = _nodes("v", 1)
        balancer = LoadBalancer({"v": pool})
        with pytest.raises(ValueError):
            balancer.remove_node("v")

    def test_queue_depths_reports_backlog(self):
        balancer, pool = self._balancer()
        balancer.submit("v", "r1", None)
        balancer.submit("v", "r2", None)
        assert balancer.queue_depths() == {"v": 2}

    def test_submit_then_drain_executes_everything(self):
        balancer, pool = self._balancer()
        balancer.submit("v", "r1", "x")
        balancer.submit("v", "r2", "y")
        completions = balancer.drain()
        assert len(completions["v"]) == 2
        assert balancer.queue_depths() == {"v": 0}
        outputs = {c.result.output for c in completions["v"]}
        assert outputs == {"v:x", "v:y"}
