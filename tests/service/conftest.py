"""Engine-matrix activation for the simulator service suite.

Every test in this directory runs under both execution engines via the
root ``sim_engine`` fixture (legacy in the fast tier, legacy + columnar
in the full tier); the engine arrives through the ``REPRO_SIM_ENGINE``
environment override, so no call site needs an explicit parameter.
"""

import pytest


@pytest.fixture(autouse=True)
def _sim_engine_matrix(sim_engine):
    return sim_engine
