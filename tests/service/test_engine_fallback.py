"""The report's engine bookkeeping: which engine ran, and why it fell back.

``LoadTestReport.engine_used`` / ``fallback_reason`` surface what the
simulator previously only kept on itself — so multi-region merges, bench
output and plain callers can aggregate fallback counts without holding
the simulator.  Neither field enters the digest: *how* a run executed is
bit-irrelevant to *what* it produced.
"""

import pytest

from repro.service.simulation import (
    canonical_scenarios,
    run_scenario,
    scenario_measurements,
)
from repro.service.simulation.report import LoadTestReport


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()


def test_columnar_run_reports_engine(toy):
    spec = canonical_scenarios()["baseline"]
    report = run_scenario(spec, toy, engine="columnar")
    assert report.engine_used == "columnar"
    assert report.fallback_reason is None


def test_fallback_reports_reason(toy):
    spec = canonical_scenarios()["node-crash"]
    report = run_scenario(spec, toy, engine="columnar")
    assert report.engine_used == "legacy"
    assert report.fallback_reason is not None
    assert "NodeCrash" in report.fallback_reason


def test_explicit_legacy_reports_no_fallback(toy):
    spec = canonical_scenarios()["baseline"]
    report = run_scenario(spec, toy, engine="legacy")
    assert report.engine_used == "legacy"
    assert report.fallback_reason is None


def test_engine_fields_stay_out_of_the_digest(toy):
    spec = canonical_scenarios()["baseline"]
    columnar = run_scenario(spec, toy, engine="columnar")
    legacy = run_scenario(spec, toy, engine="legacy")
    assert columnar.engine_used != legacy.engine_used
    assert columnar.digest() == legacy.digest()


def test_from_columns_defaults_engine_fields(toy):
    spec = canonical_scenarios()["baseline"]
    report = run_scenario(spec, toy, engine="columnar")
    rebuilt = LoadTestReport.from_columns(
        report.records._columns,
        final_pool_sizes=dict(report.final_pool_sizes),
    )
    assert rebuilt.engine_used is None
    assert rebuilt.fallback_reason is None
    assert rebuilt.digest() == report.digest()
