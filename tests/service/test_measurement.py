"""Tests for measurement records, tables and builders."""

import numpy as np
import pytest

from repro.service.measurement import (
    MeasurementSet,
    VersionMeasurement,
    measure_ic_service,
    measure_mini_ic_service,
)


def _tiny_set() -> MeasurementSet:
    records = []
    for i in range(6):
        for version, (err, lat, conf) in {
            "fast": (float(i % 2), 0.1, 0.6),
            "slow": (0.0, 0.4, 0.9),
        }.items():
            records.append(
                VersionMeasurement(
                    request_id=f"r{i}", version=version, error=err,
                    latency_s=lat, confidence=conf,
                )
            )
    return MeasurementSet.from_records(
        "toy", records, {"fast": "cpu.medium", "slow": "cpu.large"},
        versions_order=["fast", "slow"],
    )


class TestVersionMeasurement:
    def test_validation(self):
        with pytest.raises(ValueError):
            VersionMeasurement("r", "v", error=-0.1, latency_s=0.1, confidence=0.5)
        with pytest.raises(ValueError):
            VersionMeasurement("r", "v", error=0.1, latency_s=-0.1, confidence=0.5)
        with pytest.raises(ValueError):
            VersionMeasurement("r", "v", error=0.1, latency_s=0.1, confidence=1.5)


class TestMeasurementSet:
    def test_shapes_and_accessors(self):
        ms = _tiny_set()
        assert ms.n_requests == 6
        assert ms.n_versions == 2
        assert ms.version_index("slow") == 1
        assert ms.mean_error("slow") == 0.0
        assert ms.mean_latency("fast") == pytest.approx(0.1)
        assert ms.most_accurate_version() == "slow"
        assert ms.fastest_version() == "fast"

    def test_unknown_version_raises(self):
        with pytest.raises(KeyError):
            _tiny_set().version_index("huge")

    def test_column_and_field_validation(self):
        ms = _tiny_set()
        assert ms.column("fast", "error").shape == (6,)
        with pytest.raises(ValueError):
            ms.column("fast", "temperature")

    def test_instance_lookup(self):
        ms = _tiny_set()
        assert ms.instance_for("slow").name == "cpu.large"

    def test_subset_and_split(self):
        ms = _tiny_set()
        train, test = ms.split([0, 1, 2, 3], [4, 5])
        assert train.n_requests == 4
        assert test.n_requests == 2
        assert test.request_ids == ("r4", "r5")

    def test_subset_rejects_empty(self):
        with pytest.raises(ValueError):
            _tiny_set().subset([])

    def test_incomplete_records_rejected(self):
        records = [
            VersionMeasurement("r0", "fast", 0.1, 0.1, 0.5),
            VersionMeasurement("r0", "slow", 0.1, 0.2, 0.5),
            VersionMeasurement("r1", "fast", 0.1, 0.1, 0.5),
        ]
        with pytest.raises(ValueError):
            MeasurementSet.from_records(
                "toy", records, {"fast": "cpu.medium", "slow": "cpu.medium"}
            )

    def test_missing_instance_rejected(self):
        with pytest.raises(ValueError):
            MeasurementSet(
                service="toy",
                request_ids=("r0",),
                versions=("a",),
                error=np.zeros((1, 1)),
                latency_s=np.zeros((1, 1)),
                confidence=np.zeros((1, 1)),
                version_instances={},
            )

    def test_json_round_trip(self, tmp_path):
        ms = _tiny_set()
        path = tmp_path / "measurements.json"
        ms.to_json(path)
        loaded = MeasurementSet.from_json(path)
        assert loaded.service == ms.service
        assert loaded.request_ids == ms.request_ids
        assert np.allclose(loaded.error, ms.error)
        assert loaded.version_instances == ms.version_instances


class TestBuilders:
    def test_asr_builder_shape(self, asr_measurements, speech_corpus):
        assert asr_measurements.service == "asr"
        assert asr_measurements.n_requests == len(speech_corpus)
        assert asr_measurements.n_versions == 7
        assert (asr_measurements.error >= 0).all()
        assert (asr_measurements.latency_s > 0).all()

    def test_asr_tradeoff_direction(self, asr_measurements):
        # The widest configuration must be at least as accurate and slower
        # than the narrowest one.
        assert asr_measurements.mean_error("asr_v7") < asr_measurements.mean_error(
            "asr_v1"
        )
        assert asr_measurements.mean_latency("asr_v7") > asr_measurements.mean_latency(
            "asr_v1"
        )

    def test_asr_cache_round_trip(self, tmp_path):
        from repro.datasets import make_voxforge_surrogate
        from repro.service.measurement import measure_asr_service

        tiny = make_voxforge_surrogate(n_utterances=5, seed=21)
        cache = tmp_path / "asr.json"
        first = measure_asr_service(corpus=tiny, cache_path=cache)
        assert cache.exists()
        second = measure_asr_service(cache_path=cache)
        assert second.request_ids == first.request_ids

    def test_ic_builder(self, ic_measurements):
        assert ic_measurements.service == "ic_cpu"
        assert ic_measurements.n_versions == 5
        assert set(np.unique(ic_measurements.error)) <= {0.0, 1.0}

    def test_ic_gpu_builder_uses_gpu_instances(self, ic_gpu_measurements):
        assert ic_gpu_measurements.instance_for(
            ic_gpu_measurements.versions[0]
        ).is_gpu

    def test_ic_builder_validation(self):
        with pytest.raises(ValueError):
            measure_ic_service(10, device="tpu")

    def test_mini_ic_builder(self):
        ms = measure_mini_ic_service(
            n_images=160, n_classes=4, image_size=8, epochs=1, seed=3
        )
        assert ms.service == "ic_mini"
        assert ms.n_versions == 5
        assert ms.n_requests == 64  # 40 % of 160
