"""Tests for service nodes, load balancing and cluster deployments."""

import pytest

from repro.service.cluster import ClusterDeployment, NodePool
from repro.service.instances import get_instance_type
from repro.service.load_balancer import LeastBusyPolicy, LoadBalancer, RoundRobinPolicy
from repro.service.node import CallableVersion, ServiceNode, VersionResult
from repro.service.request import ServiceRequest


def _echo_version(name: str, compute_seconds: float = 1.0, confidence: float = 0.9):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version=name,
            output=f"{name}:{payload}",
            error=0.0,
            confidence=confidence,
            compute_seconds=compute_seconds,
        )

    return CallableVersion(name, handler)


class TestVersionResult:
    def test_validation(self):
        with pytest.raises(ValueError):
            VersionResult("r", "v", None, None, confidence=1.5, compute_seconds=0.1)
        with pytest.raises(ValueError):
            VersionResult("r", "v", None, None, confidence=0.5, compute_seconds=-1.0)


class TestCallableVersion:
    def test_rejects_mislabeled_result(self):
        def handler(request_id, payload):
            return VersionResult(request_id, "other", None, None, 0.5, 0.1)

        version = CallableVersion("mine", handler)
        with pytest.raises(ValueError):
            version.handle("r1", None)


class TestServiceNode:
    def test_processing_applies_speed_factor(self):
        node = ServiceNode(_echo_version("fast", compute_seconds=2.0),
                           get_instance_type("cpu.large"))
        result, latency = node.process("r1", "x")
        assert result.output == "fast:x"
        assert latency == pytest.approx(2.0 / get_instance_type("cpu.large").speed_factor)

    def test_accounting_accumulates(self):
        node = ServiceNode(_echo_version("v", 1.0), get_instance_type("cpu.medium"))
        node.process("r1", None)
        node.process("r2", None)
        assert node.requests_served == 2
        assert node.busy_seconds == pytest.approx(2.0)
        assert node.accumulated_cost > 0.0
        node.reset_accounting()
        assert node.busy_seconds == 0.0


class TestLoadBalancer:
    def _pools(self):
        inst = get_instance_type("cpu.medium")
        return {
            "fast": [ServiceNode(_echo_version("fast", 0.5), inst) for _ in range(2)],
            "slow": [ServiceNode(_echo_version("slow", 2.0), inst)],
        }

    def test_round_robin_cycles(self):
        pools = self._pools()
        balancer = LoadBalancer(pools, selection_policy=RoundRobinPolicy())
        balancer.dispatch("fast", "r1", None)
        balancer.dispatch("fast", "r2", None)
        served = [node.requests_served for node in pools["fast"]]
        assert served == [1, 1]

    def test_least_busy_balances(self):
        pools = self._pools()
        balancer = LoadBalancer(pools, selection_policy=LeastBusyPolicy())
        for i in range(4):
            balancer.dispatch("fast", f"r{i}", None)
        served = [node.requests_served for node in pools["fast"]]
        assert served == [2, 2]

    def test_unknown_version(self):
        balancer = LoadBalancer(self._pools())
        with pytest.raises(KeyError):
            balancer.dispatch("huge", "r1", None)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            LoadBalancer({"v": []})

    def test_dispatch_many_returns_all(self):
        balancer = LoadBalancer(self._pools())
        results = balancer.dispatch_many(["fast", "slow"], "r1", None)
        assert set(results) == {"fast", "slow"}

    def test_total_busy_seconds(self):
        balancer = LoadBalancer(self._pools())
        balancer.dispatch("slow", "r1", None)
        assert balancer.total_busy_seconds()["slow"] > 0.0


class TestClusterDeployment:
    def _deployment(self):
        inst = get_instance_type("cpu.medium")
        return ClusterDeployment(
            {
                "fast": NodePool(_echo_version("fast", 0.5), inst, n_nodes=2),
                "slow": NodePool(_echo_version("slow", 2.0), inst),
            },
            per_request_fee=0.001,
        )

    def test_versions_listed(self):
        assert set(self._deployment().versions) == {"fast", "slow"}

    def test_serve_with_version(self):
        deployment = self._deployment()
        response = deployment.serve_with_version(
            "fast", ServiceRequest(request_id="r1", payload="hello")
        )
        assert response.versions_used == ("fast",)
        assert response.response_time_s > 0.0
        assert response.invocation_cost > 0.0

    def test_one_size_fits_all_constructor(self):
        deployment = ClusterDeployment.one_size_fits_all(
            _echo_version("only", 1.0), get_instance_type("cpu.medium"), n_nodes=3
        )
        assert deployment.versions == ("only",)
        assert deployment.load_balancer.pool_size("only") == 3

    def test_iaas_spend_accumulates_and_resets(self):
        deployment = self._deployment()
        deployment.serve_with_version(
            "slow", ServiceRequest(request_id="r1", payload=None)
        )
        assert deployment.iaas_spend()["slow"] > 0.0
        deployment.reset_accounting()
        assert deployment.iaas_spend()["slow"] == 0.0

    def test_iaas_spend_retains_removed_node_cost(self):
        deployment = self._deployment()
        deployment.add_nodes("fast", 1)
        for i in range(4):
            deployment.serve_with_version(
                "fast", ServiceRequest(request_id=f"r{i}", payload=None)
            )
        before = deployment.iaas_spend()["fast"]
        assert before > 0.0
        # no clock given: replay-path eviction only needs empty queues
        removed = deployment.remove_node("fast")
        assert removed is not None
        # eviction does not refund money already spent
        assert deployment.iaas_spend()["fast"] == pytest.approx(before)
        deployment.reset_accounting()
        assert deployment.iaas_spend()["fast"] == 0.0

    def test_serve_with_version_refuses_pending_queues(self):
        deployment = self._deployment()
        deployment.submit("fast", ServiceRequest(request_id="queued", payload=None))
        with pytest.raises(RuntimeError):
            deployment.serve_with_version(
                "fast", ServiceRequest(request_id="r2", payload=None)
            )
        # the queued request is still intact and drainable
        responses = deployment.drain()
        assert [r.request_id for r in responses] == ["queued"]

    def test_rejects_empty_pools(self):
        with pytest.raises(ValueError):
            ClusterDeployment({})

    def test_node_pool_validation(self):
        with pytest.raises(ValueError):
            NodePool(_echo_version("v"), get_instance_type("cpu.medium"), n_nodes=0)
