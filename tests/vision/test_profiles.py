"""Tests for the calibrated image-classification profiles."""

import numpy as np
import pytest

from repro.vision.profiles import (
    IC_CPU_VERSIONS,
    IC_GPU_VERSIONS,
    NetworkProfile,
    ic_version_names,
    simulate_ic_measurements,
)


class TestProfileTables:
    def test_five_versions_per_device(self):
        assert len(IC_CPU_VERSIONS) == 5
        assert len(IC_GPU_VERSIONS) == 5

    def test_same_architectures_both_devices(self):
        cpu_archs = {p.architecture for p in IC_CPU_VERSIONS.values()}
        gpu_archs = {p.architecture for p in IC_GPU_VERSIONS.values()}
        assert cpu_archs == gpu_archs

    def test_gpu_faster_than_cpu(self):
        for name, cpu_profile in IC_CPU_VERSIONS.items():
            gpu_profile = IC_GPU_VERSIONS[name.replace("cpu", "gpu")]
            assert gpu_profile.latency_mean_s < cpu_profile.latency_mean_s

    def test_resnet_most_accurate(self):
        best = min(IC_CPU_VERSIONS.values(), key=lambda p: p.top1_error)
        assert best.architecture == "resnet50"

    def test_version_names_helper(self):
        assert ic_version_names("cpu")[0] == "ic_cpu_squeezenet"
        with pytest.raises(ValueError):
            ic_version_names("tpu")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            NetworkProfile("x", "alexnet", "tpu", 0.4, 0.01)
        with pytest.raises(ValueError):
            NetworkProfile("x", "alexnet", "cpu", 1.4, 0.01)
        with pytest.raises(ValueError):
            NetworkProfile("x", "alexnet", "cpu", 0.4, -0.01)


class TestSimulatedMeasurements:
    def test_marginal_errors_match_published(self):
        _, outcomes = simulate_ic_measurements(20000, seed=1)
        for name, profile in IC_CPU_VERSIONS.items():
            assert outcomes[name].error.mean() == pytest.approx(
                profile.top1_error, abs=0.02
            )

    def test_latency_means_match_profiles(self):
        _, outcomes = simulate_ic_measurements(20000, seed=1)
        for name, profile in IC_CPU_VERSIONS.items():
            assert outcomes[name].latency_s.mean() == pytest.approx(
                profile.latency_mean_s, rel=0.05
            )

    def test_confidence_correlates_with_correctness(self):
        _, outcomes = simulate_ic_measurements(5000, seed=2)
        for outcome in outcomes.values():
            correct = outcome.error == 0.0
            assert outcome.confidence[correct].mean() > outcome.confidence[~correct].mean()

    def test_correctness_correlated_across_versions(self):
        _, outcomes = simulate_ic_measurements(5000, seed=3)
        squeeze = outcomes["ic_cpu_squeezenet"].error == 0.0
        resnet = outcomes["ic_cpu_resnet50"].error == 0.0
        joint = float((squeeze & resnet).mean())
        independent = float(squeeze.mean() * resnet.mean())
        assert joint > independent

    def test_deterministic_with_seed(self):
        d1, o1 = simulate_ic_measurements(500, seed=9)
        d2, o2 = simulate_ic_measurements(500, seed=9)
        assert np.array_equal(d1, d2)
        assert np.array_equal(
            o1["ic_cpu_vgg16"].latency_s, o2["ic_cpu_vgg16"].latency_s
        )

    def test_rejects_bad_request_count(self):
        with pytest.raises(ValueError):
            simulate_ic_measurements(0)

    def test_gpu_profiles_selectable(self):
        _, outcomes = simulate_ic_measurements(
            1000, versions=IC_GPU_VERSIONS, seed=4
        )
        assert set(outcomes) == set(IC_GPU_VERSIONS)
