"""Tests for the network container, model zoo, trainer and classifier."""

import numpy as np
import pytest

from repro.vision.classifier import ImageClassifier
from repro.vision.layers import Dense, ReLU
from repro.vision.metrics import top1_error, top_k_error
from repro.vision.model_zoo import MINI_MODEL_BUILDERS, build_mini_model
from repro.vision.network import NeuralNetwork
from repro.vision.training import SGDTrainer, TrainingConfig, softmax_cross_entropy


class TestNeuralNetwork:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NeuralNetwork("empty", [], (4,))

    def test_shape_validation_at_construction(self, rng):
        with pytest.raises(ValueError):
            NeuralNetwork("bad", [Dense(4, 3, rng=rng), Dense(5, 2, rng=rng)], (4,))

    def test_forward_single_and_batch(self, rng):
        net = NeuralNetwork("mlp", [Dense(4, 3, rng=rng), ReLU()], (4,))
        single = net.forward(np.ones(4))
        batch = net.forward(np.ones((5, 4)))
        assert single.shape == (3,)
        assert batch.shape == (5, 3)

    def test_forward_rejects_wrong_shape(self, rng):
        net = NeuralNetwork("mlp", [Dense(4, 3, rng=rng)], (4,))
        with pytest.raises(ValueError):
            net.forward(np.ones((5, 7)))

    def test_predict_proba_normalised(self, rng):
        net = NeuralNetwork("mlp", [Dense(4, 3, rng=rng)], (4,))
        proba = net.predict_proba(np.ones((2, 4)))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_flops_and_parameters_positive(self, rng):
        net = NeuralNetwork("mlp", [Dense(4, 3, rng=rng)], (4,))
        assert net.flops() > 0
        assert net.n_parameters == 4 * 3 + 3

    def test_describe_contains_layers(self, rng):
        net = NeuralNetwork("mlp", [Dense(4, 3, rng=rng), ReLU()], (4,))
        text = net.describe()
        assert "Dense" in text and "ReLU" in text


class TestModelZoo:
    def test_all_builders_construct(self):
        for name in MINI_MODEL_BUILDERS:
            net = build_mini_model(name, (1, 8, 8), 5, seed=0)
            assert net.output_shape == (5,)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_mini_model("mini_transformer", (1, 8, 8), 5)

    def test_capacity_ordering(self):
        flops = [
            build_mini_model(name, (1, 16, 16), 10, seed=0).flops()
            for name in MINI_MODEL_BUILDERS
        ]
        # squeezenet is the cheapest and vgg the most expensive
        assert flops[0] == min(flops)
        assert flops[-1] == max(flops)

    def test_deterministic_weights(self):
        a = build_mini_model("mini_alexnet", (1, 8, 8), 4, seed=3)
        b = build_mini_model("mini_alexnet", (1, 8, 8), 4, seed=3)
        assert np.array_equal(a.layers[0].params["weight"], b.layers[0].params["weight"])


class TestTraining:
    def test_softmax_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1]])
        labels = np.array([0])
        loss, grad = softmax_cross_entropy(logits, labels)
        proba = np.exp(logits) / np.exp(logits).sum()
        assert loss == pytest.approx(float(-np.log(proba[0, 0])))
        assert grad.shape == logits.shape
        assert grad.sum() == pytest.approx(0.0, abs=1e-12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(momentum=1.5)

    def test_training_reduces_loss(self, image_dataset):
        net = build_mini_model("mini_squeezenet", (1, 8, 8), 5, seed=0)
        trainer = SGDTrainer(net, TrainingConfig(epochs=4, learning_rate=0.1, seed=0))
        history = trainer.train(image_dataset.images[:150], image_dataset.labels[:150])
        assert history[-1]["loss"] < history[0]["loss"]
        assert history[-1]["accuracy"] > 0.3

    def test_evaluate_matches_predictions(self, image_dataset):
        net = build_mini_model("mini_squeezenet", (1, 8, 8), 5, seed=0)
        trainer = SGDTrainer(net, TrainingConfig(epochs=2, learning_rate=0.1))
        trainer.train(image_dataset.images[:120], image_dataset.labels[:120])
        accuracy = trainer.evaluate(image_dataset.images[120:180], image_dataset.labels[120:180])
        assert 0.0 <= accuracy <= 1.0

    def test_rejects_mismatched_shapes(self, image_dataset):
        net = build_mini_model("mini_squeezenet", (1, 8, 8), 5, seed=0)
        trainer = SGDTrainer(net)
        with pytest.raises(ValueError):
            trainer.train(image_dataset.images[:10], image_dataset.labels[:9])


class TestClassifier:
    def test_classification_result_fields(self, image_dataset):
        net = build_mini_model("mini_squeezenet", (1, 8, 8), 5, seed=0)
        classifier = ImageClassifier(net, device_gflops=1.0)
        image, label = image_dataset[0]
        result = classifier.classify(image, label, request_id="img_0")
        assert result.request_id == "img_0"
        assert result.top1_error in (0.0, 1.0)
        assert result.is_correct == (result.predicted_class == label)
        assert 0.0 <= result.confidence <= 1.0
        assert result.latency_s > 0.0

    def test_latency_scales_with_device(self, image_dataset):
        net = build_mini_model("mini_vgg", (1, 8, 8), 5, seed=0)
        slow = ImageClassifier(net, device_gflops=1.0, fixed_overhead_s=0.0)
        fast = ImageClassifier(net, device_gflops=10.0, fixed_overhead_s=0.0)
        assert fast.latency_per_request == pytest.approx(slow.latency_per_request / 10)

    def test_batch_classification(self, image_dataset):
        net = build_mini_model("mini_squeezenet", (1, 8, 8), 5, seed=0)
        classifier = ImageClassifier(net)
        results = classifier.classify_batch(
            image_dataset.images[:8], image_dataset.labels[:8]
        )
        assert len(results) == 8

    def test_batch_rejects_mismatch(self, image_dataset):
        net = build_mini_model("mini_squeezenet", (1, 8, 8), 5, seed=0)
        classifier = ImageClassifier(net)
        with pytest.raises(ValueError):
            classifier.classify_batch(image_dataset.images[:8], image_dataset.labels[:7])

    def test_validation(self, image_dataset):
        net = build_mini_model("mini_squeezenet", (1, 8, 8), 5, seed=0)
        with pytest.raises(ValueError):
            ImageClassifier(net, device_gflops=0.0)


class TestMetrics:
    def test_top1_error(self):
        assert top1_error([1, 2, 3], [1, 2, 0]) == pytest.approx(1 / 3)

    def test_top1_rejects_empty_or_mismatched(self):
        with pytest.raises(ValueError):
            top1_error([], [])
        with pytest.raises(ValueError):
            top1_error([1], [1, 2])

    def test_top_k_error(self):
        proba = np.array([[0.1, 0.7, 0.2], [0.5, 0.3, 0.2]])
        assert top_k_error(proba, [2, 0], k=1) == pytest.approx(0.5)
        assert top_k_error(proba, [2, 0], k=2) == pytest.approx(0.0)

    def test_top_k_validation(self):
        proba = np.array([[0.5, 0.5]])
        with pytest.raises(ValueError):
            top_k_error(proba, [0], k=3)
