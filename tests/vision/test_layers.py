"""Tests for the NumPy neural-network layers, including gradient checks."""

import numpy as np
import pytest

from repro.vision.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePool,
    MaxPool2D,
    ReLU,
    Residual,
    Softmax,
)


def _numeric_gradient(layer, x, grad_out, param_name=None, eps=1e-5):
    """Central-difference gradient of sum(output * grad_out)."""
    target = layer.params[param_name] if param_name else x
    numeric = np.zeros_like(target)
    flat = target.ravel()
    numeric_flat = numeric.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float((layer.forward(x) * grad_out).sum())
        flat[i] = original - eps
        minus = float((layer.forward(x) * grad_out).sum())
        flat[i] = original
        numeric_flat[i] = (plus - minus) / (2 * eps)
    return numeric


class TestReLU:
    def test_forward_clamps(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = Softmax().forward(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(Softmax().forward(x), Softmax().forward(x + 100.0))

    def test_flops_positive(self):
        assert Softmax().flops((10,)) > 0


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        assert layer.forward(np.ones((2, 4))).shape == (2, 3)

    def test_rejects_wrong_input_width(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 5)))

    def test_gradient_check_weights(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x)
        layer.backward(grad_out)
        numeric = _numeric_gradient(layer, x, grad_out, param_name="weight")
        assert np.allclose(layer.grads["weight"], numeric, atol=1e-5)

    def test_gradient_check_input(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x)
        grad_in = layer.backward(grad_out)
        numeric = _numeric_gradient(layer, x, grad_out)
        assert np.allclose(grad_in, numeric, atol=1e-5)

    def test_flops(self, rng):
        assert Dense(10, 5, rng=rng).flops((10,)) == 2 * 10 * 5

    def test_parameter_count(self, rng):
        assert Dense(10, 5, rng=rng).n_parameters == 10 * 5 + 5


class TestConv2D:
    def test_same_padding_preserves_shape(self, rng):
        layer = Conv2D(2, 4, 3, rng=rng)
        out = layer.forward(rng.normal(size=(2, 2, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_valid_padding_shrinks(self, rng):
        layer = Conv2D(1, 1, 3, padding="valid", rng=rng)
        assert layer.forward(rng.normal(size=(1, 1, 8, 8))).shape == (1, 1, 6, 6)

    def test_stride_two_halves(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, rng=rng)
        assert layer.output_shape((1, 8, 8)) == (2, 4, 4)

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            Conv2D(1, 1, 3, stride=3, rng=rng)
        with pytest.raises(ValueError):
            Conv2D(1, 1, 3, padding="reflect", rng=rng)

    def test_rejects_wrong_channels(self, rng):
        layer = Conv2D(2, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 3, 8, 8)))

    def test_matches_direct_convolution(self, rng):
        layer = Conv2D(1, 1, 3, padding="valid", rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        out = layer.forward(x)
        kernel = layer.params["weight"][0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i : i + 3, j : j + 3] * kernel).sum()
        assert np.allclose(out[0, 0], expected + layer.params["bias"][0])

    def test_gradient_check_weights(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        layer.forward(x)
        grad_out = rng.normal(size=(1, 2, 4, 4))
        layer.backward(grad_out)
        numeric = _numeric_gradient(layer, x, grad_out, param_name="weight")
        assert np.allclose(layer.grads["weight"], numeric, atol=1e-4)

    def test_gradient_check_input(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        layer.forward(x)
        grad_out = rng.normal(size=(1, 2, 4, 4))
        grad_in = layer.backward(grad_out)
        numeric = _numeric_gradient(layer, x, grad_out)
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_flops_scale_with_channels(self, rng):
        small = Conv2D(1, 2, 3, rng=rng).flops((1, 8, 8))
        large = Conv2D(1, 8, 3, rng=rng).flops((1, 8, 8))
        assert large == 4 * small


class TestMaxPool2D:
    def test_forward_takes_max(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == 5.0

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 5)))

    def test_rejects_pool_size_one(self):
        with pytest.raises(ValueError):
            MaxPool2D(1)

    def test_backward_routes_to_argmax(self, rng):
        layer = MaxPool2D(2)
        x = rng.normal(size=(1, 1, 4, 4))
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad.shape == x.shape
        assert grad.sum() == pytest.approx(4.0)

    def test_gradient_check_input(self, rng):
        layer = MaxPool2D(2)
        x = rng.normal(size=(1, 1, 4, 4))
        grad_out = rng.normal(size=(1, 1, 2, 2))
        layer.forward(x)
        grad_in = layer.backward(grad_out)
        numeric = _numeric_gradient(layer, x, grad_out)
        assert np.allclose(grad_in, numeric, atol=1e-5)


class TestGlobalAveragePool:
    def test_forward(self):
        x = np.ones((2, 3, 4, 4))
        assert np.allclose(GlobalAveragePool().forward(x), 1.0)

    def test_backward_distributes(self, rng):
        layer = GlobalAveragePool()
        x = rng.normal(size=(1, 2, 4, 4))
        layer.forward(x)
        grad = layer.backward(np.ones((1, 2)))
        assert np.allclose(grad, 1.0 / 16)


class TestFlattenAndResidual:
    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        assert layer.backward(out).shape == x.shape

    def test_residual_preserves_shape(self, rng):
        block = Residual([Conv2D(2, 2, 3, rng=rng), ReLU(), Conv2D(2, 2, 3, rng=rng)])
        x = rng.normal(size=(1, 2, 6, 6))
        assert block.forward(x).shape == x.shape

    def test_residual_rejects_shape_change(self, rng):
        block = Residual([Conv2D(2, 4, 3, rng=rng)])
        with pytest.raises(ValueError):
            block.forward(rng.normal(size=(1, 2, 6, 6)))

    def test_residual_rejects_empty(self):
        with pytest.raises(ValueError):
            Residual([])

    def test_residual_parameter_count(self, rng):
        inner = Conv2D(2, 2, 3, rng=rng)
        block = Residual([inner])
        assert block.n_parameters == inner.n_parameters
