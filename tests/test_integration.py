"""End-to-end integration tests spanning all packages.

These tests walk the same path the paper's evaluation does, at miniature
scale: measure a service under every version, analyse the "one size fits
all" limitation, generate Tolerance Tier routing rules with statistical
confidence, and verify the tiers save time/cost on held-out requests
without violating their accuracy guarantees.
"""

import pytest

from repro.analysis import categorize_requests, osfa_limit_summary, version_pareto
from repro.core import (
    RoutingRuleGenerator,
    TierRouter,
    enumerate_configurations,
    evaluate_policy,
)
from repro.service.request import Objective


@pytest.fixture(scope="module")
def asr_rules(request):
    asr_measurements = request.getfixturevalue("asr_measurements")
    configurations = enumerate_configurations(
        asr_measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["asr_v3", "asr_v4", "asr_v5"],
    )
    generator = RoutingRuleGenerator(
        asr_measurements,
        configurations,
        confidence=0.95,
        seed=3,
        min_trials=6,
        max_trials=30,
    )
    return asr_measurements, generator


class TestAsrEndToEnd:
    def test_limitation_analysis(self, asr_measurements):
        summary = osfa_limit_summary(asr_measurements)
        assert summary.latency_ratio > 1.5
        assert summary.error_reduction > 0.2
        points = version_pareto(asr_measurements)
        assert any(p.on_frontier for p in points)
        shares = categorize_requests(asr_measurements, tolerance=1e-6).shares()
        assert shares["unchanged"] > 0.2

    def test_rules_save_latency_within_tolerance(self, asr_rules):
        measurements, generator = asr_rules
        table = generator.generate([0.01, 0.05, 0.10], Objective.RESPONSE_TIME)
        reductions = []
        for tolerance in (0.01, 0.05, 0.10):
            configuration = table.config_for(tolerance)
            metrics = evaluate_policy(measurements, configuration.policy)
            assert metrics.error_degradation <= tolerance + 1e-9
            reductions.append(metrics.response_time_reduction)
        # more tolerance never hurts
        assert reductions == sorted(reductions)
        assert reductions[-1] > 0.0

    def test_router_combines_objectives(self, asr_rules):
        _, generator = asr_rules
        router = TierRouter(
            {
                Objective.RESPONSE_TIME: generator.generate(
                    [0.05], Objective.RESPONSE_TIME
                ),
                Objective.COST: generator.generate([0.05], Objective.COST),
            }
        )
        time_cfg = router.route(0.05, Objective.RESPONSE_TIME)
        cost_cfg = router.route(0.05, Objective.COST)
        assert time_cfg.versions
        assert cost_cfg.versions


class TestIcEndToEnd:
    def test_tiers_beat_osfa_on_both_objectives(self, ic_measurements):
        configurations = enumerate_configurations(
            ic_measurements,
            thresholds=(0.5, 0.6),
            fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet"],
        )
        generator = RoutingRuleGenerator(
            ic_measurements,
            configurations,
            confidence=0.95,
            seed=4,
            min_trials=6,
            max_trials=25,
        )
        for objective in ("response-time", "cost"):
            table = generator.generate([0.10], objective)
            configuration = table.config_for(0.10)
            metrics = evaluate_policy(ic_measurements, configuration.policy)
            assert metrics.error_degradation <= 0.10 + 1e-9
            assert metrics.response_time_reduction >= 0.0
            assert metrics.cost_reduction >= -1e-9

    def test_gpu_service_also_improves(self, ic_gpu_measurements):
        configurations = enumerate_configurations(
            ic_gpu_measurements,
            thresholds=(0.5, 0.6),
            fast_versions=["ic_gpu_squeezenet"],
        )
        generator = RoutingRuleGenerator(
            ic_gpu_measurements,
            configurations,
            confidence=0.9,
            seed=5,
            min_trials=6,
            max_trials=20,
        )
        table = generator.generate([0.10], "response-time")
        metrics = evaluate_policy(
            ic_gpu_measurements, table.config_for(0.10).policy
        )
        assert metrics.error_degradation <= 0.10 + 1e-9
