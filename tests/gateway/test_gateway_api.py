"""The TierGateway client surface: sessions, tickets, and error paths."""

import math

import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.errors import (
    BackendCapabilityError,
    MissingVersionError,
    PolicyConfigurationError,
    RequestValidationError,
    ResultPendingError,
    TierError,
    UnknownObjectiveError,
    UnroutableToleranceError,
)
from repro.core.policies import SequentialPolicy, SingleVersionPolicy
from repro.core.router import RoutingRuleTable, TierRouter
from repro.service.cluster import ClusterDeployment, NodePool
from repro.service.gateway import DirectBackend, TierGateway
from repro.service.instances import get_instance_type
from repro.service.node import CallableVersion, VersionResult
from repro.service.request import Objective, ServiceRequest


def _version(name, compute_seconds, confidence):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version=name,
            output=f"{name}({payload})",
            error=None,
            confidence=confidence,
            compute_seconds=compute_seconds,
        )

    return CallableVersion(name, handler)


def _cluster(fast_confidence=0.9):
    instance = get_instance_type("cpu.medium")
    return ClusterDeployment(
        {
            "fast": NodePool(_version("fast", 0.1, fast_confidence), instance),
            "slow": NodePool(_version("slow", 0.5, 0.95), instance),
        }
    )


def _router():
    baseline = EnsembleConfiguration("cfg_base", SingleVersionPolicy("slow"))
    seq = EnsembleConfiguration("cfg_seq", SequentialPolicy("fast", "slow", 0.5))
    table = RoutingRuleTable(
        objective=Objective.RESPONSE_TIME,
        baseline=baseline,
        rules={0.05: seq},
    )
    return TierRouter({Objective.RESPONSE_TIME: table})


def _gateway(fast_confidence=0.9):
    return TierGateway(DirectBackend(_cluster(fast_confidence)), router=_router())


class _StubRequest:
    """Duck-typed request carrying an annotation a frozen ServiceRequest
    would refuse to construct (the gateway must still reject it)."""

    def __init__(self, tolerance):
        self.request_id = "stub"
        self.payload = "x"
        self.tolerance = tolerance
        self.objective = Objective.RESPONSE_TIME
        self.metadata = {}


class TestSessionSurface:
    def test_submit_resolves_immediately_on_direct_backend(self):
        gateway = _gateway()
        ticket = gateway.submit(
            ServiceRequest(request_id="r1", payload="x", tolerance=0.05)
        )
        assert ticket.done and ticket.ok
        response = ticket.result()
        assert response.versions_used == ("fast",)
        assert response.result == "fast(x)"
        assert response.tier == pytest.approx(0.05)

    def test_submit_batch_and_drain(self):
        gateway = _gateway()
        tickets = gateway.submit_batch(
            [
                ServiceRequest(request_id=f"r{i}", payload="x", tolerance=0.05)
                for i in range(3)
            ]
        )
        assert all(t.ok for t in tickets)
        responses = gateway.drain()
        assert [r.request_id for r in responses] == ["r0", "r1", "r2"]
        # Draining again returns nothing: responses are claimed once.
        assert gateway.drain() == []

    def test_submit_batch_length_mismatch(self):
        gateway = _gateway()
        with pytest.raises(ValueError, match="arrival"):
            gateway.submit_batch(
                [ServiceRequest(request_id="r", payload="x")],
                at_times=[0.0, 1.0],
            )

    def test_handle_does_not_leak_into_drain(self):
        gateway = _gateway()
        gateway.handle(ServiceRequest(request_id="r1", payload="x"))
        assert gateway.drain() == []

    def test_tickets_are_recorded_in_submission_order(self):
        gateway = _gateway()
        gateway.submit(ServiceRequest(request_id="a", payload="x"))
        gateway.submit(ServiceRequest(request_id="b", payload="x"))
        assert [t.request.request_id for t in gateway.tickets] == ["a", "b"]

    def test_session_bookkeeping_is_claimed_by_drain(self):
        # A long-lived synchronous gateway must not accumulate per-request
        # state: drain() claims the tickets with the responses, and the
        # one-shot handle() retains nothing at all.
        gateway = _gateway()
        gateway.submit(ServiceRequest(request_id="a", payload="x"))
        gateway.drain()
        assert gateway.tickets == ()
        gateway.handle(ServiceRequest(request_id="b", payload="x"))
        assert gateway.tickets == ()

    def test_deadline_met_bookkeeping(self):
        gateway = _gateway()
        met = gateway.submit(
            ServiceRequest(request_id="r1", payload="x", tolerance=0.05),
            deadline_s=0.2,
        )
        missed = gateway.submit(
            ServiceRequest(request_id="r2", payload="x", tolerance=0.0),
            deadline_s=0.2,
        )
        undeclared = gateway.submit(
            ServiceRequest(request_id="r3", payload="x", tolerance=0.05)
        )
        assert met.deadline_met is True  # fast path: 0.1 s
        assert missed.deadline_met is False  # baseline: 0.5 s
        assert undeclared.deadline_met is None

    def test_deadline_from_request_metadata(self):
        gateway = _gateway()
        ticket = gateway.submit(
            ServiceRequest(
                request_id="r1",
                payload="x",
                tolerance=0.05,
                metadata={"deadline_s": "0.2"},
            )
        )
        assert ticket.deadline_s == pytest.approx(0.2)
        assert ticket.deadline_met is True

    def test_malformed_metadata_deadline(self):
        gateway = _gateway()
        with pytest.raises(RequestValidationError, match="deadline_s"):
            gateway.submit(
                ServiceRequest(
                    request_id="r1",
                    payload="x",
                    metadata={"deadline_s": "soon"},
                )
            )

    def test_handle_http_preserves_metadata_headers(self):
        gateway = _gateway()
        response = gateway.handle_http(
            "r1",
            "x",
            {
                " tolerance ": "0.05",
                "OBJECTIVE": "Response-Time",
                "X-Consumer": "photo-app",
            },
        )
        assert response.versions_used == ("fast",)
        assert response.tier == pytest.approx(0.05)


class TestErrorPaths:
    def test_requires_exactly_one_of_router_configuration(self):
        backend = DirectBackend(_cluster())
        with pytest.raises(ValueError, match="exactly one"):
            TierGateway(backend)
        with pytest.raises(ValueError, match="exactly one"):
            TierGateway(
                backend,
                router=_router(),
                configuration=EnsembleConfiguration(
                    "cfg", SingleVersionPolicy("slow")
                ),
            )

    def test_unknown_objective(self):
        gateway = _gateway()  # router only has a response-time table
        with pytest.raises(UnknownObjectiveError, match="cost"):
            gateway.submit(
                ServiceRequest(
                    request_id="r1",
                    payload="x",
                    tolerance=0.05,
                    objective=Objective.COST,
                )
            )

    def test_unknown_objective_is_a_tier_and_value_error(self):
        gateway = _gateway()
        request = ServiceRequest(
            request_id="r1", payload="x", objective=Objective.COST
        )
        with pytest.raises(TierError):
            gateway.submit(request)
        with pytest.raises(ValueError):
            gateway.submit(request)

    def test_unroutable_tolerance(self):
        gateway = _gateway()
        for bad in (-0.1, float("nan"), float("inf")):
            with pytest.raises(UnroutableToleranceError, match="unroutable"):
                gateway.submit(_StubRequest(bad))

    def test_missing_version_rejected_at_construction(self):
        instance = get_instance_type("cpu.medium")
        cluster = ClusterDeployment(
            {"slow": NodePool(_version("slow", 0.5, 0.9), instance)}
        )
        with pytest.raises(MissingVersionError, match="fast"):
            TierGateway(DirectBackend(cluster), router=_router())
        # And it is still the ValueError the pre-gateway service raised.
        with pytest.raises(ValueError):
            TierGateway(DirectBackend(cluster), router=_router())

    def test_missing_threshold_is_a_hard_error(self):
        class ThresholdlessPolicy:
            kind = "seq"
            name = "seq[broken]"
            versions = ("fast", "slow")
            fast_version = "fast"
            accurate_version = "slow"

        gateway = TierGateway(
            DirectBackend(_cluster()),
            configuration=EnsembleConfiguration(
                "cfg_broken", ThresholdlessPolicy()
            ),
        )
        with pytest.raises(PolicyConfigurationError, match="confidence_threshold"):
            gateway.handle(ServiceRequest(request_id="r1", payload="x"))

    def test_malformed_headers_surface_as_request_validation_error(self):
        gateway = _gateway()
        with pytest.raises(RequestValidationError, match="Tolerance"):
            gateway.handle_http("r1", "x", {"Tolerance": "abc"})
        with pytest.raises(RequestValidationError, match="objective"):
            gateway.handle_http("r1", "x", {"Objective": "speed"})

    def test_run_load_needs_a_simulated_backend(self):
        gateway = _gateway()
        with pytest.raises(BackendCapabilityError, match="run_load"):
            gateway.run_load(None, 1)

    def test_result_pending_is_a_tier_error(self):
        ticket_error = ResultPendingError("pending")
        assert isinstance(ticket_error, TierError)
        assert isinstance(ticket_error, RuntimeError)

    def test_tolerance_below_smallest_rule_routes_to_baseline(self):
        # Tight-but-valid tolerances are routable (served by the most
        # accurate configuration), not an error.
        gateway = _gateway()
        response = gateway.handle(
            ServiceRequest(request_id="r1", payload="x", tolerance=0.001)
        )
        assert response.versions_used == ("slow",)


class TestConfigurationKinds:
    """The gateway serves every configuration kind through the executor."""

    @pytest.mark.parametrize(
        "kind, confident, expected_versions, expected_time",
        [
            ("seq", True, ("fast",), 0.1),
            ("seq", False, ("fast", "slow"), 0.6),
            ("conc", True, ("fast", "slow"), 0.1),
            ("conc", False, ("fast", "slow"), 0.5),
            ("et", True, ("fast", "slow"), 0.1),
            ("et", False, ("fast", "slow"), 0.5),
        ],
    )
    def test_two_version_semantics(
        self, kind, confident, expected_versions, expected_time
    ):
        from repro.core.policies import (
            ConcurrentPolicy,
            EarlyTerminationPolicy,
        )

        policy_cls = {
            "seq": SequentialPolicy,
            "conc": ConcurrentPolicy,
            "et": EarlyTerminationPolicy,
        }[kind]
        gateway = TierGateway(
            DirectBackend(_cluster(0.9 if confident else 0.2)),
            configuration=EnsembleConfiguration(
                f"cfg_{kind}", policy_cls("fast", "slow", 0.5)
            ),
        )
        response = gateway.handle(ServiceRequest(request_id="r", payload="x"))
        assert response.versions_used == expected_versions
        assert response.response_time_s == pytest.approx(expected_time)
        # Billing: et bounds the accurate pool's waste by the fast latency.
        if kind == "et" and confident:
            cost_conc = TierGateway(
                DirectBackend(_cluster(0.9)),
                configuration=EnsembleConfiguration(
                    "cfg_conc", ConcurrentPolicy("fast", "slow", 0.5)
                ),
            ).handle(ServiceRequest(request_id="r", payload="x"))
            assert response.invocation_cost < cost_conc.invocation_cost

    def test_single_kind(self):
        gateway = TierGateway(
            DirectBackend(_cluster()),
            configuration=EnsembleConfiguration(
                "cfg_single", SingleVersionPolicy("slow")
            ),
        )
        response = gateway.handle(ServiceRequest(request_id="r", payload="x"))
        assert response.versions_used == ("slow",)
        assert response.response_time_s == pytest.approx(0.5)
        assert not math.isnan(response.confidence)
