"""Gateway x control plane: shed tickets, drain under shedding, sync loop.

The satellite contract this file pins: a gateway ticket for a request
the admission controller shed resolves with a structured
:class:`RequestShedError` (a :class:`RequestFailedError` subclass, so
existing failure handling keeps working) — and it resolves *at* the
drain, never hanging past it.
"""

from dataclasses import replace

import pytest

from repro.core.errors import (
    BackendCapabilityError,
    RequestFailedError,
    RequestShedError,
    TierError,
)
from repro.service.control import (
    AdmissionSpec,
    ControlPlane,
    ControlSpec,
    SLOSpec,
    SLOState,
)
from repro.service.gateway import ReplayBackend, SimulatedBackend, TierGateway
from repro.service.request import ServiceRequest
from repro.service.simulation import (
    SpikeArrivals,
    canonical_scenarios,
    scenario_measurements,
)


@pytest.fixture(scope="module")
def toy():
    return scenario_measurements()


@pytest.fixture(scope="module")
def spike_spec():
    return replace(
        canonical_scenarios()["spike"],
        arrivals=SpikeArrivals(
            2.0, spike_start_s=10.0, spike_duration_s=15.0, spike_multiplier=8.0
        ),
        n_requests=300,
    )


def shed_control_spec(target=1.5):
    return ControlSpec(
        window_s=5.0,
        tick_interval_s=0.25,
        slos=(
            SLOSpec(
                name="latency",
                max_p95_latency_s=target,
                breach_after=1,
                clear_after=8,
            ),
        ),
        admission=AdmissionSpec(policy="probabilistic", shed_probability=0.9),
    )


def requests_for(spec, toy, rng_seed=5):
    import numpy as np

    rng = np.random.default_rng(rng_seed)
    times = spec.arrivals.times(spec.n_requests, np.random.default_rng(spec.seed))
    picks = rng.integers(0, toy.n_requests, size=spec.n_requests)
    return [
        ServiceRequest(
            request_id=f"g{i:05d}",
            payload=toy.request_ids[picks[i]],
            tolerance=0.0,
        )
        for i in range(spec.n_requests)
    ], [float(t) for t in times]


class TestSimulatedDrainUnderShedding:
    def gateway(self, spec, toy):
        backend = SimulatedBackend.from_scenario(
            replace(spec, control=shed_control_spec()),
            toy,
            check_invariants=True,
        )
        return TierGateway(backend, configuration=spec.configuration)

    def test_every_ticket_resolves_and_sheds_are_structured(
        self, spike_spec, toy
    ):
        gateway = self.gateway(spike_spec, toy)
        requests, times = requests_for(spike_spec, toy)
        tickets = gateway.submit_batch(requests, at_times=times)
        responses = gateway.drain()
        assert all(t.done for t in tickets), "no ticket may hang past drain"
        shed = [t for t in tickets if isinstance(t.exception(), RequestShedError)]
        assert shed, "this overload scenario must shed under the 0.9 policy"
        assert len(responses) == sum(1 for t in tickets if t.ok)
        assert len(shed) + len(responses) + sum(
            1
            for t in tickets
            if t.exception() is not None
            and not isinstance(t.exception(), RequestShedError)
        ) == len(tickets)

    def test_shed_error_carries_record_and_hierarchy(self, spike_spec, toy):
        gateway = self.gateway(spike_spec, toy)
        requests, times = requests_for(spike_spec, toy)
        tickets = gateway.submit_batch(requests, at_times=times)
        gateway.drain()
        shed = next(
            t for t in tickets if isinstance(t.exception(), RequestShedError)
        )
        error = shed.exception()
        # Structured: typed, in the TierError family, catchable as a
        # terminal failure, and carrying the engine's shed record.
        assert isinstance(error, RequestFailedError)
        assert isinstance(error, TierError)
        assert error.record is not None and error.record.shed
        with pytest.raises(RequestShedError):
            shed.result()

    def test_backend_report_accounts_sheds(self, spike_spec, toy):
        gateway = self.gateway(spike_spec, toy)
        requests, times = requests_for(spike_spec, toy)
        tickets = gateway.submit_batch(requests, at_times=times)
        gateway.drain()
        report = gateway.backend.last_report
        n_shed = sum(
            1 for t in tickets if isinstance(t.exception(), RequestShedError)
        )
        assert report.n_shed == n_shed > 0
        assert report.n_requests == len(tickets)

    def test_control_spec_inflated_at_bind_time(self, spike_spec, toy):
        backend = SimulatedBackend.from_scenario(
            replace(spike_spec, control=shed_control_spec()), toy
        )
        assert backend.control is None  # spec not inflated yet
        TierGateway(backend, configuration=spike_spec.configuration)
        assert isinstance(backend.control, ControlPlane)


class TestGatewaySideControl:
    def test_control_rejected_on_deferred_backend(self, spike_spec, toy):
        backend = SimulatedBackend.from_scenario(spike_spec, toy)
        plane = ControlPlane.from_spec(shed_control_spec())
        with pytest.raises(BackendCapabilityError, match="SimulatedBackend"):
            TierGateway(
                backend,
                configuration=spike_spec.configuration,
                control=plane,
            )

    def test_sync_gateway_sheds_under_forced_breach(self, spike_spec, toy):
        plane = ControlPlane.from_spec(
            ControlSpec(
                # The sync control clock advances one unit per
                # submission, so this window spans the last 100 requests.
                window_s=100.0,
                tick_interval_s=0.5,
                slos=(
                    SLOSpec(
                        name="latency",
                        max_p95_latency_s=0.001,
                        breach_after=1,
                        clear_after=100,
                    ),
                ),
                admission=AdmissionSpec(
                    policy="probabilistic", shed_probability=1.0
                ),
            )
        )
        gateway = TierGateway(
            ReplayBackend(toy),
            configuration=spike_spec.configuration,
            control=plane,
        )
        # Warm the window past the percentile guard so the 1 ms SLO
        # breaches for real (sheds begin mid-warmup, once the twentieth
        # sample unlocks the percentile), then watch admission drop
        # everything.
        for i in range(25):
            try:
                gateway.handle(
                    ServiceRequest(request_id=f"warm{i}", payload="r000")
                )
            except RequestShedError:
                pass
        assert plane.state is SLOState.BREACH
        ticket = gateway.submit(
            ServiceRequest(request_id="doomed", payload="r001")
        )
        assert isinstance(ticket.exception(), RequestShedError)
        with pytest.raises(RequestShedError):
            ticket.result()
        # Shed tickets produced no response: drain returns only real ones.
        assert gateway.drain() == []

    def test_sync_handle_raises_shed_without_desync(self, toy, spike_spec):
        plane = ControlPlane.from_spec(
            ControlSpec(
                # The sync control clock advances one unit per
                # submission, so this window spans the last 100 requests.
                window_s=100.0,
                tick_interval_s=0.5,
                slos=(
                    SLOSpec(
                        name="latency",
                        max_p95_latency_s=0.001,
                        breach_after=1,
                        clear_after=100,
                    ),
                ),
                admission=AdmissionSpec(
                    policy="probabilistic", shed_probability=1.0
                ),
            )
        )
        gateway = TierGateway(
            ReplayBackend(toy),
            configuration=spike_spec.configuration,
            control=plane,
        )
        for i in range(25):
            try:
                gateway.handle(
                    ServiceRequest(request_id=f"warm{i}", payload="r000")
                )
            except RequestShedError:
                pass
        with pytest.raises(RequestShedError):
            gateway.handle(ServiceRequest(request_id="x", payload="r002"))
        # The one-shot bookkeeping stayed consistent: a fresh healthy
        # request (post-shed the plane stays breached, so exempt it by
        # disabling the controller) still round-trips.
        plane.controller = None
        response = gateway.handle(
            ServiceRequest(request_id="y", payload="r003")
        )
        assert response.request_id == "y"
        assert gateway.tickets == ()
