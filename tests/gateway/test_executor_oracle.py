"""The per-request executor is the oracle for the vectorized policies.

``PolicyExecutor`` over a ``ReplayBackend`` executes one request at a time
with the canonical escalation/latency/billing semantics; the policies in
:mod:`repro.core.policies` evaluate whole measurement sets as numpy column
operations (the rule generator's hot path).  These tests pin the two
implementations bit-identical on every request of a toy measurement table,
for all four configuration kinds — exactly the equivalence the rule
generator's guarantees rest on.
"""

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.executor import PolicyExecutor
from repro.core.metrics import build_pricing
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.service.gateway import ReplayBackend
from repro.service.request import ServiceRequest
from repro.service.simulation.scenarios import scenario_measurements

THRESHOLD = 0.6

CONFIGURATIONS = {
    "single": EnsembleConfiguration("cfg_single", SingleVersionPolicy("slow")),
    "seq": EnsembleConfiguration(
        "cfg_seq", SequentialPolicy("fast", "slow", THRESHOLD)
    ),
    "conc": EnsembleConfiguration(
        "cfg_conc", ConcurrentPolicy("fast", "slow", THRESHOLD)
    ),
    "et": EnsembleConfiguration(
        "cfg_et", EarlyTerminationPolicy("fast", "slow", THRESHOLD)
    ),
}


@pytest.fixture(scope="module")
def measurements():
    return scenario_measurements(n_requests=60, seed=3)


@pytest.fixture(scope="module")
def pricing(measurements):
    return build_pricing(measurements)


@pytest.mark.parametrize("kind", sorted(CONFIGURATIONS))
def test_executor_matches_vectorized_policy(kind, measurements, pricing):
    configuration = CONFIGURATIONS[kind]
    executor = PolicyExecutor(ReplayBackend(measurements, pricing=pricing))
    vectorized = configuration.policy.evaluate(measurements)

    for row, request_id in enumerate(measurements.request_ids):
        outcome = executor.execute(
            configuration,
            ServiceRequest(request_id=request_id, payload=request_id),
        )
        assert outcome.escalated == bool(vectorized.escalated[row])
        assert outcome.error == vectorized.error[row]
        assert outcome.response_time_s == vectorized.response_time_s[row]
        for version in configuration.versions:
            assert outcome.node_seconds.get(version, 0.0) == (
                vectorized.node_seconds[version][row]
            )
        # The executor bills through the same pricing model the metrics
        # layer uses; per-request cost must agree with pricing the
        # vectorized node-seconds directly.
        reference_cost = pricing.request_cost(
            {
                version: float(vectorized.node_seconds[version][row])
                for version in configuration.versions
                if vectorized.node_seconds[version][row] > 0.0
                or version in outcome.node_seconds
            }
        )
        assert outcome.invocation_cost == reference_cost.invocation_cost


def test_executor_escalation_rate_matches(measurements):
    """Aggregate behaviour agrees too (sanity over the toy table)."""
    configuration = CONFIGURATIONS["seq"]
    executor = PolicyExecutor(ReplayBackend(measurements))
    escalated = [
        executor.execute(
            configuration, ServiceRequest(request_id=rid, payload=rid)
        ).escalated
        for rid in measurements.request_ids
    ]
    vectorized = configuration.policy.evaluate(measurements)
    assert float(np.mean(escalated)) == vectorized.escalation_rate()


def test_replay_backend_rejects_unmeasured_payload(measurements):
    from repro.core.errors import RequestValidationError, TierError

    executor = PolicyExecutor(ReplayBackend(measurements))
    with pytest.raises(RequestValidationError, match="measured request id"):
        executor.execute(
            CONFIGURATIONS["single"],
            ServiceRequest(request_id="r", payload="no_such_id"),
        )
    # Part of the typed hierarchy, and still a ValueError for old callers.
    with pytest.raises(TierError):
        executor.execute(
            CONFIGURATIONS["single"],
            ServiceRequest(request_id="r", payload=None),
        )


def test_executor_answers_with_accurate_result_on_escalation(measurements):
    """The answering output/confidence flips to the accurate version."""
    configuration = CONFIGURATIONS["seq"]
    executor = PolicyExecutor(ReplayBackend(measurements))
    fast_conf = measurements.confidence[:, measurements.version_index("fast")]
    slow_conf = measurements.confidence[:, measurements.version_index("slow")]
    escalating = int(np.argmin(fast_conf))
    confident = int(np.argmax(fast_conf))
    assert fast_conf[escalating] < THRESHOLD <= fast_conf[confident]

    rid = measurements.request_ids[escalating]
    outcome = executor.execute(
        configuration, ServiceRequest(request_id=rid, payload=rid)
    )
    assert outcome.confidence == float(slow_conf[escalating])
    assert outcome.versions_used == ("fast", "slow")

    rid = measurements.request_ids[confident]
    outcome = executor.execute(
        configuration, ServiceRequest(request_id=rid, payload=rid)
    )
    assert outcome.confidence == float(fast_conf[confident])
    assert outcome.versions_used == ("fast",)
