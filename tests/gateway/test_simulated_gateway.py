"""Gateway traffic through the virtual-clock engine, faults included.

Two contracts are pinned here:

* **Determinism** — a gateway-driven load test over
  ``SimulatedBackend.from_scenario`` produces exactly the report a direct
  :func:`~repro.service.simulation.scenarios.run_scenario` call does
  (byte-identical digest), under a PR 3 fault scenario with the
  conservation-law invariant checker enabled.  The public API *is* the
  load-test surface now, at zero behavioural drift.
* **Session semantics** — explicit ``submit``/``drain`` sessions resolve
  tickets from the engine's records: successful requests carry the
  answering result and confidence, requests the scenario killed raise
  :class:`~repro.core.errors.RequestFailedError`, and the session is
  single-use.
"""

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.errors import (
    BackendCapabilityError,
    GatewayClosedError,
    RequestFailedError,
    ResultPendingError,
)
from repro.core.policies import SequentialPolicy
from repro.service.gateway import SimulatedBackend, TierGateway
from repro.service.request import ServiceRequest
from repro.service.simulation import NodeCrash, build_replay_cluster
from repro.service.simulation.scenarios import (
    canonical_scenarios,
    run_scenario,
    scenario_measurements,
)


@pytest.fixture(scope="module")
def measurements():
    return scenario_measurements()


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", ["node-crash", "flaky", "baseline"])
    def test_gateway_load_matches_run_scenario(self, name, measurements):
        spec = canonical_scenarios()[name]
        reference = run_scenario(spec, measurements, check_invariants=True)

        backend = SimulatedBackend.from_scenario(
            spec, measurements, check_invariants=True
        )
        gateway = TierGateway(backend, configuration=spec.configuration)
        report = gateway.run_load(
            spec.arrivals,
            spec.n_requests,
            tolerance=spec.tolerance,
            objective=spec.objective,
            payload_ids=measurements.request_ids,
        )
        assert report.digest() == reference.digest()
        assert backend.last_report is report

    def test_run_load_closes_the_session(self, measurements):
        spec = canonical_scenarios()["baseline"]
        gateway = TierGateway(
            SimulatedBackend.from_scenario(spec, measurements),
            configuration=spec.configuration,
        )
        gateway.run_load(
            spec.arrivals,
            spec.n_requests,
            tolerance=spec.tolerance,
            payload_ids=measurements.request_ids,
        )
        with pytest.raises(GatewayClosedError):
            gateway.submit(ServiceRequest(request_id="late", payload="r000"))

    def test_run_load_refuses_a_dirty_session(self, measurements):
        spec = canonical_scenarios()["baseline"]
        gateway = TierGateway(
            SimulatedBackend.from_scenario(spec, measurements),
            configuration=spec.configuration,
        )
        gateway.submit(
            ServiceRequest(request_id="r", payload="r000"), at_time=0.0
        )
        with pytest.raises(GatewayClosedError, match="fresh session"):
            gateway.run_load(
                spec.arrivals, 5, payload_ids=measurements.request_ids
            )


def _session(measurements, *, faults=(), payloads, check_invariants=True):
    """A submit/drain gateway session over a seq(fast, slow, 0.6) tier."""
    cluster = build_replay_cluster(measurements, {"fast": 1, "slow": 1})
    backend = SimulatedBackend(
        cluster, faults=faults, check_invariants=check_invariants, seed=5
    )
    gateway = TierGateway(
        backend,
        configuration=EnsembleConfiguration(
            "cfg_seq", SequentialPolicy("fast", "slow", 0.6)
        ),
    )
    tickets = [
        gateway.submit(
            ServiceRequest(request_id=f"c{i:02d}", payload=payload),
            at_time=0.1 * i,
        )
        for i, payload in enumerate(payloads)
    ]
    return gateway, tickets


def _split_payloads(measurements):
    """Measured ids whose fast confidence clears / misses the 0.6 gate."""
    fast_conf = measurements.confidence[:, measurements.version_index("fast")]
    confident = measurements.request_ids[int(np.argmax(fast_conf))]
    escalating = measurements.request_ids[int(np.argmin(fast_conf))]
    assert fast_conf[int(np.argmax(fast_conf))] >= 0.6
    assert fast_conf[int(np.argmin(fast_conf))] < 0.6
    return confident, escalating


class TestSubmitDrainSession:
    def test_healthy_session_resolves_all_tickets(self, measurements):
        confident, escalating = _split_payloads(measurements)
        gateway, tickets = _session(
            measurements, payloads=[confident, escalating, confident]
        )
        assert not any(t.done for t in tickets)
        with pytest.raises(ResultPendingError):
            tickets[0].result()

        responses = gateway.drain()
        assert len(responses) == 3
        assert all(t.ok for t in tickets)
        # The confident request answered from the fast version; the
        # escalated one answered with the accurate result.
        assert tickets[0].result().versions_used == ("fast",)
        assert tickets[1].result().versions_used == ("fast", "slow")
        assert tickets[1].result().confidence == pytest.approx(0.95)
        # Replay versions echo the measured payload as the output.
        assert tickets[0].result().result == confident
        assert tickets[0].result().response_time_s > 0.0
        assert all(r.invocation_cost > 0.0 for r in responses)

    def test_fault_scenario_fails_escalated_tickets(self, measurements):
        confident, escalating = _split_payloads(measurements)
        # The accurate pool dies before anything completes and never
        # recovers: escalated requests park forever and fail at drain;
        # confident fast answers survive.
        gateway, tickets = _session(
            measurements,
            faults=(NodeCrash(at_s=0.01, version="slow", node_index=0),),
            payloads=[confident, escalating, confident, escalating],
        )
        responses = gateway.drain()

        survivors = [tickets[0], tickets[2]]
        casualties = [tickets[1], tickets[3]]
        assert all(t.ok for t in survivors)
        assert all(t.done and not t.ok for t in casualties)
        for ticket in casualties:
            with pytest.raises(RequestFailedError) as excinfo:
                ticket.result()
            assert excinfo.value.record is not None
            assert excinfo.value.record.failed
        assert {r.request_id for r in responses} == {
            t.request.request_id for t in survivors
        }
        report = gateway.backend.last_report
        assert report.n_failed == 2
        assert report.availability == pytest.approx(0.5)

    def test_session_is_single_use(self, measurements):
        confident, _ = _split_payloads(measurements)
        gateway, _tickets = _session(measurements, payloads=[confident])
        gateway.drain()
        with pytest.raises(GatewayClosedError):
            gateway.drain()
        with pytest.raises(GatewayClosedError):
            gateway.submit(ServiceRequest(request_id="x", payload=confident))

    def test_handle_refused_on_simulated_backend(self, measurements):
        confident, _ = _split_payloads(measurements)
        gateway, _tickets = _session(measurements, payloads=[confident])
        with pytest.raises(BackendCapabilityError, match="synchronous"):
            gateway.handle(ServiceRequest(request_id="x", payload=confident))
