"""TierGateway(DirectBackend) is bit-identical to the pre-refactor service.

``_ReferenceToleranceTiersService`` below is a faithful copy of the
escalation logic the old ``repro.core.api.ToleranceTiersService`` carried
before it became a shim (same dispatch order, same latency composition,
same billing).  Every test drives the reference and the gateway over
independently built but identical deployments and requires the responses
to match field-for-field — across all four configuration kinds, confident
and escalating traffic, and both the object and HTTP entry points.

The shim itself is covered too: it must warn ``DeprecationWarning`` once
at construction and answer through the gateway unchanged.
"""

import warnings

import pytest

from repro.core.api import ToleranceTiersService
from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.core.router import RoutingRuleTable, TierRouter
from repro.service.cluster import ClusterDeployment, NodePool
from repro.service.gateway import DirectBackend, TierGateway
from repro.service.instances import get_instance_type
from repro.service.node import CallableVersion, VersionResult
from repro.service.request import Objective, ServiceRequest, ServiceResponse


class _ReferenceToleranceTiersService:
    """The pre-gateway implementation, kept verbatim as the equivalence pin."""

    def __init__(self, cluster, router):
        self.cluster = cluster
        self.router = router

    def handle(self, request):
        configuration = self.router.route(request.tolerance, request.objective)
        policy = configuration.policy
        if configuration.kind == "single":
            return self._respond_single(policy.versions[0], request)
        return self._respond_two_version(configuration, request)

    def _respond_single(self, version, request):
        result, latency = self.cluster.raw_dispatch(version, request)
        cost = self.cluster.cost_of({version: latency})
        return ServiceResponse(
            request_id=request.request_id,
            result=result.output,
            versions_used=(version,),
            response_time_s=latency,
            invocation_cost=cost.invocation_cost,
            tier=request.tolerance,
            confidence=result.confidence,
        )

    def _respond_two_version(self, configuration, request):
        policy = configuration.policy
        fast_version = policy.fast_version
        accurate_version = policy.accurate_version
        threshold = getattr(policy, "confidence_threshold", 0.5)
        kind = configuration.kind

        fast_result, fast_latency = self.cluster.raw_dispatch(
            fast_version, request
        )
        escalate = fast_result.confidence < threshold

        if not escalate:
            node_seconds = {fast_version: fast_latency}
            if kind == "conc":
                _, accurate_latency = self.cluster.raw_dispatch(
                    accurate_version, request
                )
                node_seconds[accurate_version] = accurate_latency
            elif kind == "et":
                _, accurate_latency = self.cluster.raw_dispatch(
                    accurate_version, request
                )
                node_seconds[accurate_version] = min(
                    accurate_latency, fast_latency
                )
            cost = self.cluster.cost_of(node_seconds)
            return ServiceResponse(
                request_id=request.request_id,
                result=fast_result.output,
                versions_used=tuple(node_seconds.keys()),
                response_time_s=fast_latency,
                invocation_cost=cost.invocation_cost,
                tier=request.tolerance,
                confidence=fast_result.confidence,
            )

        accurate_result, accurate_latency = self.cluster.raw_dispatch(
            accurate_version, request
        )
        if kind == "seq":
            response_time = fast_latency + accurate_latency
        else:
            response_time = max(fast_latency, accurate_latency)
        cost = self.cluster.cost_of(
            {fast_version: fast_latency, accurate_version: accurate_latency}
        )
        return ServiceResponse(
            request_id=request.request_id,
            result=accurate_result.output,
            versions_used=(fast_version, accurate_version),
            response_time_s=response_time,
            invocation_cost=cost.invocation_cost,
            tier=request.tolerance,
            confidence=accurate_result.confidence,
        )


def _version(name, compute_seconds, confidence):
    def handler(request_id, payload):
        return VersionResult(
            request_id=request_id,
            version=name,
            output=f"{name}({payload})",
            error=None,
            confidence=confidence,
            compute_seconds=compute_seconds,
        )

    return CallableVersion(name, handler)


def _cluster(fast_confidence):
    instance = get_instance_type("cpu.medium")
    return ClusterDeployment(
        {
            "fast": NodePool(
                _version("fast", 0.1, fast_confidence), instance, n_nodes=2
            ),
            "slow": NodePool(_version("slow", 0.5, 0.95), instance),
        },
        per_request_fee=1e-6,
        markup=3.0,
    )


def _router():
    """A router exercising all four configuration kinds across tiers."""
    baseline = EnsembleConfiguration("cfg_base", SingleVersionPolicy("slow"))
    rules = {
        0.01: EnsembleConfiguration(
            "cfg_seq", SequentialPolicy("fast", "slow", 0.5)
        ),
        0.05: EnsembleConfiguration(
            "cfg_conc", ConcurrentPolicy("fast", "slow", 0.5)
        ),
        0.10: EnsembleConfiguration(
            "cfg_et", EarlyTerminationPolicy("fast", "slow", 0.5)
        ),
    }
    table = RoutingRuleTable(
        objective=Objective.RESPONSE_TIME, baseline=baseline, rules=rules
    )
    return TierRouter({Objective.RESPONSE_TIME: table})


#: One request per configuration kind (0.0 routes to the single baseline).
TOLERANCES = (0.0, 0.01, 0.05, 0.10)


@pytest.mark.parametrize("fast_confidence", [0.9, 0.2])
def test_gateway_bit_identical_to_reference(fast_confidence):
    reference = _ReferenceToleranceTiersService(
        _cluster(fast_confidence), _router()
    )
    gateway = TierGateway(
        DirectBackend(_cluster(fast_confidence)), router=_router()
    )
    for i, tolerance in enumerate(TOLERANCES * 2):
        request = ServiceRequest(
            request_id=f"r{i}", payload=f"p{i}", tolerance=tolerance
        )
        expected = reference.handle(request)
        actual = gateway.handle(request)
        assert actual == expected  # frozen dataclass: field-for-field


@pytest.mark.parametrize("fast_confidence", [0.9, 0.2])
def test_shim_bit_identical_and_deprecated(fast_confidence):
    with pytest.warns(DeprecationWarning, match="TierGateway"):
        shim = ToleranceTiersService(_cluster(fast_confidence), _router())
    reference = _ReferenceToleranceTiersService(
        _cluster(fast_confidence), _router()
    )
    for i, tolerance in enumerate(TOLERANCES):
        request = ServiceRequest(
            request_id=f"r{i}", payload=f"p{i}", tolerance=tolerance
        )
        assert shim.handle(request) == reference.handle(request)


def test_shim_handle_http_matches_reference():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = ToleranceTiersService(_cluster(0.2), _router())
    reference = _ReferenceToleranceTiersService(_cluster(0.2), _router())
    headers = {"Tolerance": "0.01", "Objective": "response-time"}
    expected = reference.handle(
        ServiceRequest.from_headers("h1", "payload", headers)
    )
    assert shim.handle_http("h1", "payload", headers) == expected


def test_shim_warns_exactly_once_per_construction():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ToleranceTiersService(_cluster(0.9), _router())
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
