"""Gateway graceful-degradation guarantees under the chaos vocabulary.

The contract pinned here: whatever chaos the backend scenario injects —
cascading crashes, retry storms against exhausted budgets, an entire
deployment dying mid-session — ``drain()`` always returns, and every
submitted ticket resolves to either a response or a
:class:`~repro.core.errors.RequestFailedError`.  A gateway that hangs or
leaks pending tickets under failure has no business calling itself
degraded-mode-aware.
"""

import numpy as np
import pytest

from repro.core.configuration import EnsembleConfiguration
from repro.core.errors import RequestFailedError
from repro.core.policies import SequentialPolicy
from repro.service.gateway import SimulatedBackend, TierGateway
from repro.service.request import ServiceRequest
from repro.service.simulation import (
    CascadePolicy,
    NodeCrash,
    RetryPolicy,
    RetryStorm,
    build_replay_cluster,
    chaos_scenarios,
    run_scenario,
    scenario_measurements,
)


@pytest.fixture(scope="module")
def measurements():
    return scenario_measurements()


def _chaos_session(
    measurements,
    *,
    faults,
    retry=None,
    pools=None,
    n=8,
    seed=5,
):
    """A submit/drain session over seq(fast, slow, 0.6) with chaos injected."""
    cluster = build_replay_cluster(
        measurements, pools if pools is not None else {"fast": 2, "slow": 2}
    )
    backend = SimulatedBackend(
        cluster,
        faults=faults,
        retry=retry if retry is not None else RetryPolicy(),
        check_invariants=True,
        seed=seed,
    )
    gateway = TierGateway(
        backend,
        configuration=EnsembleConfiguration(
            "cfg_seq", SequentialPolicy("fast", "slow", 0.6)
        ),
    )
    payloads = measurements.request_ids
    tickets = [
        gateway.submit(
            ServiceRequest(request_id=f"c{i:02d}", payload=payloads[i % len(payloads)]),
            at_time=0.25 * i,
        )
        for i in range(n)
    ]
    return gateway, tickets


def assert_all_tickets_resolve(gateway, tickets):
    """drain() returns, and every ticket is terminally resolved."""
    responses = gateway.drain()
    assert all(t.done for t in tickets)
    resolved, failed = 0, 0
    for ticket in tickets:
        if ticket.ok:
            assert ticket.result().request_id == ticket.request.request_id
            resolved += 1
        else:
            with pytest.raises(RequestFailedError):
                ticket.result()
            failed += 1
    assert resolved + failed == len(tickets)
    assert len(responses) == resolved
    return resolved, failed


class TestDrainUnderChaos:
    def test_cascade_session_resolves_every_ticket(self, measurements):
        gateway, tickets = _chaos_session(
            measurements,
            faults=(
                NodeCrash(at_s=0.3, version="fast", node_index=0, recover_at_s=3.0),
                CascadePolicy(
                    version="fast",
                    window_s=4.0,
                    base_probability=0.5,
                    load_factor=0.2,
                ),
            ),
            retry=RetryPolicy(max_attempts=3, backoff_s=0.05),
            n=12,
        )
        resolved, _ = assert_all_tickets_resolve(gateway, tickets)
        assert resolved > 0  # the cascade degrades, it does not blackhole

    def test_retry_storm_with_exhausted_budgets_terminates(self, measurements):
        gateway, tickets = _chaos_session(
            measurements,
            faults=(
                RetryStorm(
                    start_s=0.0,
                    end_s=60.0,
                    failure_probability=1.0,
                    bucket_s=0.5,
                    bad_fraction=1.0,  # every bucket bad: worst case
                ),
            ),
            retry=RetryPolicy(
                max_attempts=4,
                backoff_s=0.05,
                retry_budget=2,
                max_inflight_retries=4,
                max_total_retries=10,
            ),
            n=10,
        )
        resolved, failed = assert_all_tickets_resolve(gateway, tickets)
        assert failed == len(tickets)  # nothing survives a 100% storm
        report = gateway.backend.last_report
        assert report.n_retry_denied > 0
        assert report.summary()["total_retries"] <= 10  # the global budget held

    def test_all_nodes_dead_still_resolves(self, measurements):
        """Every node in every pool dies before anything completes and
        never recovers: tickets must fail cleanly, not hang."""
        gateway, tickets = _chaos_session(
            measurements,
            # Surviving pools reindex after each death, so both crashes
            # target index 0, one after the other.
            faults=tuple(
                NodeCrash(at_s=at, version=version, node_index=0)
                for version in ("fast", "slow")
                for at in (0.01, 0.02)
            ),
            retry=RetryPolicy(max_attempts=3, backoff_s=0.05),
            n=6,
        )
        resolved, failed = assert_all_tickets_resolve(gateway, tickets)
        assert resolved == 0
        assert failed == len(tickets)

    def test_dead_pool_with_cascade_and_storm_resolves(self, measurements):
        """The stacked worst case: the accurate pool dies, a cascade
        policy watches it, and a storm hammers the fast pool — drain
        still resolves every ticket."""
        gateway, tickets = _chaos_session(
            measurements,
            faults=(
                NodeCrash(at_s=0.2, version="slow", node_index=0),
                NodeCrash(at_s=0.25, version="slow", node_index=1),
                CascadePolicy(version="slow", window_s=5.0, base_probability=0.6),
                RetryStorm(
                    start_s=0.0,
                    end_s=30.0,
                    failure_probability=0.7,
                    bad_fraction=0.8,
                    versions=("fast",),
                ),
            ),
            retry=RetryPolicy(
                max_attempts=3, backoff_s=0.05, retry_budget=3, max_total_retries=30
            ),
            n=12,
        )
        assert_all_tickets_resolve(gateway, tickets)


class TestChaosScenarioParity:
    """Gateway-driven chaos runs are byte-identical to run_scenario."""

    @pytest.mark.parametrize("name", sorted(chaos_scenarios()))
    def test_gateway_load_matches_run_scenario(self, name, measurements):
        spec = chaos_scenarios()[name]
        reference = run_scenario(spec, measurements, check_invariants=True)
        backend = SimulatedBackend.from_scenario(
            spec, measurements, check_invariants=True
        )
        gateway = TierGateway(backend, configuration=spec.configuration)
        report = gateway.run_load(
            spec.arrivals,
            spec.n_requests,
            tolerance=spec.tolerance,
            objective=spec.objective,
            payload_ids=measurements.request_ids,
        )
        assert report.digest() == reference.digest()
