"""Tests for the synthetic VoxForge surrogate corpus."""

import pytest

from repro.datasets.voxforge import (
    SyntheticSpeechCorpus,
    SyntheticVoxForgeConfig,
    make_voxforge_surrogate,
)


class TestConfigValidation:
    def test_rejects_zero_utterances(self):
        with pytest.raises(ValueError):
            SyntheticVoxForgeConfig(n_utterances=0)

    def test_rejects_bad_word_bounds(self):
        with pytest.raises(ValueError):
            SyntheticVoxForgeConfig(min_words=5, max_words=3)

    def test_rejects_tiny_vocabulary(self):
        with pytest.raises(ValueError):
            SyntheticVoxForgeConfig(vocabulary_size=5)

    def test_rejects_inverted_snr_range(self):
        with pytest.raises(ValueError):
            SyntheticVoxForgeConfig(snr_db_range=(10.0, 2.0))


class TestCorpusStructure:
    @pytest.fixture(scope="class")
    def corpus(self):
        return make_voxforge_surrogate(n_utterances=50, seed=3, n_speakers=6)

    def test_sizes(self, corpus):
        assert len(corpus) == 50
        assert len(corpus.speakers) == 6
        assert len(corpus.vocabulary) == corpus.config.vocabulary_size

    def test_vocabulary_unique(self, corpus):
        assert len(set(corpus.vocabulary)) == len(corpus.vocabulary)

    def test_transcripts_use_vocabulary(self, corpus):
        vocab = set(corpus.vocabulary)
        for utterance in corpus:
            assert set(utterance.words) <= vocab
            assert (
                corpus.config.min_words
                <= utterance.n_words
                <= corpus.config.max_words
            )

    def test_utterance_ids_unique(self, corpus):
        ids = [u.utterance_id for u in corpus]
        assert len(set(ids)) == len(ids)

    def test_speakers_within_snr_range(self, corpus):
        low, high = corpus.config.snr_db_range
        for speaker in corpus.speakers:
            assert low <= speaker.snr_db <= high

    def test_training_sentences_disjoint_object(self, corpus):
        assert len(corpus.training_sentences) == corpus.config.n_training_sentences

    def test_total_words_positive(self, corpus):
        assert corpus.total_words() >= 50 * corpus.config.min_words

    def test_text_property(self, corpus):
        utterance = corpus[0]
        assert utterance.text == " ".join(utterance.words)

    def test_subset_preserves_order(self, corpus):
        subset = corpus.subset([3, 1, 7])
        assert [u.utterance_id for u in subset] == [
            corpus[3].utterance_id,
            corpus[1].utterance_id,
            corpus[7].utterance_id,
        ]

    def test_speakers_by_id(self, corpus):
        table = corpus.speakers_by_id()
        assert set(table) == {s.speaker_id for s in corpus.speakers}


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = make_voxforge_surrogate(n_utterances=20, seed=9)
        b = make_voxforge_surrogate(n_utterances=20, seed=9)
        assert a.vocabulary == b.vocabulary
        assert [u.words for u in a] == [u.words for u in b]

    def test_different_seed_different_corpus(self):
        a = make_voxforge_surrogate(n_utterances=20, seed=9)
        b = make_voxforge_surrogate(n_utterances=20, seed=10)
        assert [u.words for u in a] != [u.words for u in b]
