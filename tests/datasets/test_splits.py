"""Tests for dataset split helpers."""

import numpy as np
import pytest

from repro.datasets.splits import DatasetSplit, cross_validation_splits, train_test_split


class TestDatasetSplit:
    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            DatasetSplit(train_indices=(0, 1, 2), test_indices=(2, 3))

    def test_counts(self):
        split = DatasetSplit(train_indices=(0, 1, 2), test_indices=(3,))
        assert split.n_train == 3
        assert split.n_test == 1


class TestTrainTestSplit:
    def test_partition(self):
        split = train_test_split(10, test_fraction=0.3)
        assert split.n_test == 3
        assert split.n_train == 7
        assert set(split.train_indices) | set(split.test_indices) == set(range(10))

    def test_shuffled_with_rng(self):
        split = train_test_split(50, test_fraction=0.2, rng=np.random.default_rng(0))
        assert set(split.train_indices) | set(split.test_indices) == set(range(50))

    def test_at_least_one_each_side(self):
        split = train_test_split(2, test_fraction=0.01)
        assert split.n_test == 1
        assert split.n_train == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=1.5)

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            train_test_split(1)


class TestCrossValidationSplits:
    def test_ten_fold_partition(self):
        splits = cross_validation_splits(37, folds=10, rng=np.random.default_rng(1))
        assert len(splits) == 10
        all_test = [i for split in splits for i in split.test_indices]
        assert sorted(all_test) == list(range(37))

    def test_each_fold_is_disjoint(self):
        for split in cross_validation_splits(20, folds=4):
            assert set(split.train_indices).isdisjoint(split.test_indices)
            assert split.n_train + split.n_test == 20
