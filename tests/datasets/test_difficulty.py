"""Tests for the latent difficulty model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.difficulty import DifficultyModel, DifficultyProfile


class TestProfileValidation:
    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            DifficultyProfile(idiosyncratic_std=-0.1)

    def test_rejects_zero_difficulty_std(self):
        with pytest.raises(ValueError):
            DifficultyProfile(difficulty_std=0.0)


class TestDifficultyModel:
    def test_rejects_zero_requests(self, rng):
        with pytest.raises(ValueError):
            DifficultyModel(0, rng=rng)

    def test_difficulties_shared_across_versions(self, rng):
        model = DifficultyModel(500, rng=rng)
        d1 = model.difficulties
        d2 = model.difficulties
        assert np.array_equal(d1, d2)
        # returned arrays are copies — mutating one must not affect the model
        d1[0] += 100.0
        assert model.difficulties[0] != d1[0]

    def test_skill_calibration_matches_target(self, rng):
        model = DifficultyModel(20000, rng=rng)
        for target in (0.1, 0.25, 0.4):
            skill = model.skill_for_error_rate(target)
            correctness = model.correctness_for_skill(skill)
            empirical = DifficultyModel.empirical_error_rate(correctness)
            assert empirical == pytest.approx(target, abs=0.02)

    def test_expected_error_rate_closed_form(self, rng):
        model = DifficultyModel(10, rng=rng)
        skill = model.skill_for_error_rate(0.3)
        assert model.expected_error_rate(skill) == pytest.approx(0.3, abs=1e-9)

    def test_skill_rejects_degenerate_rates(self, rng):
        model = DifficultyModel(10, rng=rng)
        with pytest.raises(ValueError):
            model.skill_for_error_rate(0.0)
        with pytest.raises(ValueError):
            model.skill_for_error_rate(1.0)

    def test_higher_skill_is_weakly_better(self, rng):
        model = DifficultyModel(5000, rng=rng)
        weak = model.correctness_for_skill(model.skill_for_error_rate(0.4))
        strong = model.correctness_for_skill(model.skill_for_error_rate(0.1))
        assert strong.mean() > weak.mean()

    def test_correctness_correlated_across_versions(self, rng):
        # A request that is easy (low difficulty) should tend to be answered
        # correctly by both a weak and a strong version.
        model = DifficultyModel(5000, rng=rng)
        table = model.calibrated_correctness_table({"weak": 0.4, "strong": 0.2})
        weak, strong = table["weak"], table["strong"]
        both_correct = float((weak & strong).mean())
        independent = float(weak.mean() * strong.mean())
        assert both_correct > independent

    def test_empirical_error_rate_rejects_empty(self):
        with pytest.raises(ValueError):
            DifficultyModel.empirical_error_rate([])

    def test_correctness_table_names(self, rng):
        model = DifficultyModel(50, rng=rng)
        table = model.correctness_table({"a": 0.5, "b": 1.5})
        assert set(table) == {"a", "b"}
        assert table["a"].shape == (50,)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.9))
    def test_calibration_property(self, target):
        model = DifficultyModel(8000, rng=np.random.default_rng(7))
        skill = model.skill_for_error_rate(target)
        empirical = DifficultyModel.empirical_error_rate(
            model.correctness_for_skill(skill)
        )
        assert abs(empirical - target) < 0.05
