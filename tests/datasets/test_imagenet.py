"""Tests for the synthetic ImageNet surrogate dataset."""

import numpy as np
import pytest

from repro.datasets.imagenet import (
    SyntheticImageDataset,
    SyntheticImageNetConfig,
    make_imagenet_surrogate,
)


class TestConfigValidation:
    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            SyntheticImageNetConfig(n_classes=1)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            SyntheticImageNetConfig(noise_std=-1.0)

    def test_rejects_inverted_signal_range(self):
        with pytest.raises(ValueError):
            SyntheticImageNetConfig(signal_range=(2.0, 1.0))


class TestDatasetStructure:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_imagenet_surrogate(n_images=120, n_classes=4, image_size=8, seed=5)

    def test_shapes(self, dataset):
        assert dataset.images.shape == (120, 1, 8, 8)
        assert dataset.labels.shape == (120,)
        assert dataset.prototypes.shape == (4, 1, 8, 8)

    def test_labels_in_range(self, dataset):
        assert dataset.labels.min() >= 0
        assert dataset.labels.max() < 4

    def test_iteration_and_indexing(self, dataset):
        image, label = dataset[3]
        assert image.shape == (1, 8, 8)
        assert isinstance(label, int)
        assert len(list(dataset)) == len(dataset)

    def test_image_ids_unique(self, dataset):
        assert len(set(dataset.image_ids)) == len(dataset)

    def test_batches_cover_dataset(self, dataset):
        total = sum(len(labels) for _, labels in dataset.batches(32))
        assert total == len(dataset)

    def test_batches_reject_bad_size(self, dataset):
        with pytest.raises(ValueError):
            next(dataset.batches(0))

    def test_subset_view(self, dataset):
        view = dataset.subset([0, 5, 9])
        assert view.images.shape[0] == 3
        assert np.array_equal(view.labels, dataset.labels[[0, 5, 9]])

    def test_difficulty_proxy_standardised(self, dataset):
        proxy = dataset.difficulty_proxy()
        assert proxy.shape == (len(dataset),)
        assert abs(proxy.mean()) < 1e-9

    def test_high_signal_images_closer_to_prototype(self, dataset):
        # The highest-signal images should correlate better with their class
        # prototype than the lowest-signal images, on average.
        correlations = []
        for i in range(len(dataset)):
            proto = dataset.prototypes[dataset.labels[i]].ravel()
            img = dataset.images[i].ravel()
            correlations.append(np.dot(proto, img) / (np.linalg.norm(proto) * np.linalg.norm(img)))
        correlations = np.array(correlations)
        order = np.argsort(dataset.signal)
        low = correlations[order[:30]].mean()
        high = correlations[order[-30:]].mean()
        assert high > low


class TestDeterminism:
    def test_same_seed_identical(self):
        a = make_imagenet_surrogate(n_images=30, seed=2)
        b = make_imagenet_surrogate(n_images=30, seed=2)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seed_differs(self):
        a = make_imagenet_surrogate(n_images=30, seed=2)
        b = make_imagenet_surrogate(n_images=30, seed=3)
        assert not np.array_equal(a.images, b.images)
