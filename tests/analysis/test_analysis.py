"""Tests for the 'one size fits all' limitation analysis."""

import numpy as np
import pytest

from repro.analysis.categories import (
    CATEGORY_NAMES,
    categorize_requests,
    error_by_category,
)
from repro.analysis.pareto import pareto_frontier, version_pareto
from repro.analysis.summary import osfa_limit_summary
from repro.analysis.tables import format_table
from repro.analysis.tradeoff import latency_percentiles, version_summaries
from repro.service.measurement import MeasurementSet


def _synthetic_set() -> MeasurementSet:
    """Four requests with known category behaviour over three versions."""
    versions = ("v_fast", "v_mid", "v_slow")
    # rows: unchanged, improves, degrades, varies
    error = np.array(
        [
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 1.0],
            [1.0, 0.0, 1.0],
        ]
    )
    latency = np.tile(np.array([0.1, 0.2, 0.4]), (4, 1))
    confidence = np.full((4, 3), 0.8)
    return MeasurementSet(
        service="toy",
        request_ids=("r0", "r1", "r2", "r3"),
        versions=versions,
        error=error,
        latency_s=latency,
        confidence=confidence,
        version_instances={v: "cpu.medium" for v in versions},
    )


class TestPareto:
    def test_simple_frontier(self):
        flags = pareto_frontier([1.0, 2.0, 3.0], [0.3, 0.2, 0.25])
        assert flags == [True, True, False]

    def test_duplicate_points_both_kept(self):
        assert pareto_frontier([1.0, 1.0], [0.5, 0.5]) == [True, True]

    def test_empty(self):
        assert pareto_frontier([], []) == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pareto_frontier([1.0], [0.1, 0.2])

    def test_version_pareto_sorted_by_latency(self):
        points = version_pareto(_synthetic_set())
        latencies = [p.mean_latency_s for p in points]
        assert latencies == sorted(latencies)

    def test_version_pareto_flags(self, asr_measurements):
        points = version_pareto(asr_measurements)
        # the fastest and the most accurate versions are always on the frontier
        by_name = {p.version: p for p in points}
        assert by_name[asr_measurements.fastest_version()].on_frontier
        assert by_name[asr_measurements.most_accurate_version()].on_frontier


class TestCategories:
    def test_known_assignments(self):
        breakdown = categorize_requests(_synthetic_set())
        assert breakdown.assignments == ("unchanged", "improves", "degrades", "varies")

    def test_shares_sum_to_one(self):
        shares = categorize_requests(_synthetic_set()).shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == set(CATEGORY_NAMES)

    def test_counts_match_assignments(self):
        breakdown = categorize_requests(_synthetic_set())
        assert breakdown.counts()["unchanged"] == 1
        assert breakdown.indices_of("varies") == [3]

    def test_indices_of_unknown_category(self):
        with pytest.raises(ValueError):
            categorize_requests(_synthetic_set()).indices_of("sometimes")

    def test_wer_tolerance_treats_small_changes_as_unchanged(self):
        ms = _synthetic_set()
        ms.error[1] = [0.100, 0.1001, 0.0999]
        breakdown = categorize_requests(ms, tolerance=0.01)
        assert breakdown.assignments[1] == "unchanged"

    def test_majority_unchanged_on_real_services(self, asr_measurements, ic_measurements):
        for measurements in (asr_measurements, ic_measurements):
            shares = categorize_requests(measurements, tolerance=1e-6).shares()
            # the paper reports the unchanged category dominating (>65 %);
            # our synthetic substrates reproduce a clear plurality
            assert shares["unchanged"] == max(shares.values())

    def test_error_by_category_structure(self):
        ms = _synthetic_set()
        table = error_by_category(ms)
        assert "all" in table
        assert set(table["all"]) == set(ms.versions)
        assert "unchanged" not in table

    def test_error_by_category_all_matches_means(self):
        ms = _synthetic_set()
        table = error_by_category(ms)
        for version in ms.versions:
            assert table["all"][version] == pytest.approx(ms.mean_error(version))


class TestTradeoffSummaries:
    def test_version_summaries_sorted_and_normalised(self, ic_measurements):
        summaries = version_summaries(ic_measurements)
        latencies = [s.mean_latency_s for s in summaries]
        assert latencies == sorted(latencies)
        assert summaries[0].latency_vs_fastest == pytest.approx(1.0)
        best_error = min(s.mean_error for s in summaries)
        for summary in summaries:
            expected = (summary.mean_error - best_error) / best_error
            assert summary.error_vs_best == pytest.approx(expected)

    def test_latency_percentiles_monotone(self, ic_measurements):
        table = latency_percentiles(ic_measurements)
        for stats in table.values():
            assert stats["p50"] <= stats["p90"] <= stats["p99"]


class TestSummary:
    def test_headline_numbers(self, asr_measurements):
        summary = osfa_limit_summary(asr_measurements)
        assert summary.latency_ratio > 1.0
        assert 0.0 < summary.error_reduction < 1.0
        assert summary.fastest_version == asr_measurements.fastest_version()

    def test_toy_values(self):
        # every toy version has the same mean error, so the most accurate
        # version resolves to the fastest one and there is nothing to gain
        summary = osfa_limit_summary(_synthetic_set())
        assert summary.most_accurate_version == "v_fast"
        assert summary.latency_ratio == pytest.approx(1.0)
        assert summary.error_reduction == pytest.approx(0.0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["longer", 2.0]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_bools_and_floats(self):
        text = format_table(["x"], [[True], [0.123456]], float_format=".2f")
        assert "yes" in text
        assert "0.12" in text
